// Command traclusd is the TRACLUS serving daemon: it builds clustering
// models from uploaded trajectory data, persists them as versioned binary
// snapshots, and answers online classification queries about new
// trajectories — the batch-model-then-serve-updates split the batch CLI
// cannot provide.
//
// Usage:
//
//	traclusd [-addr :8125] [-workers 0] [-max-models 16]
//	         [-max-body 33554432] [-max-points 5000000]
//	         [-max-trajectories 500000] [-max-builds 4]
//	         [-classify-timeout 30s] [-data-dir DIR]
//	         [-peers URL,URL,...] [-self URL]
//
// Versioned API (v1):
//
//	POST /v1/models            body: JSON BuildRequest (see api.go);
//	                           config.geometry selects planar (default),
//	                           spatiotemporal (+config.wt, data must be CSV
//	                           with a traj_id,x,y,t timestamp column), or
//	                           geodesic (x=lon, y=lat degrees)
//	                           → 202 job to poll, or 200 {"cached":true}
//	GET  /v1/models            → {"models":[...]} resident model names
//	GET  /v1/models/{name}     → model summary + per-cluster stats
//	POST /v1/models/{name}/classify   body: CSV (traj_id,x,y; a
//	                           spatiotemporal model takes traj_id,x,y,t)
//	POST /v1/models/{name}/append     body: JSON {"format","species","data"}
//	                           (same data formats as a build) — extend the
//	                           served model with new trajectories in O(Δ),
//	                           no rebuild; → 200 new summary with "epoch"
//	                           incremented, 404 unknown model, 409 on a
//	                           snapshot-restored model (no training
//	                           geometry), 422 geometry_mismatch when the
//	                           data does not fit the model's geometry.
//	                           Sharded mode forwards to the owner replica.
//	GET  /v1/models/{name}/snapshot   → binary snapshot (export)
//	PUT  /v1/models/{name}/snapshot   body: binary snapshot (import)
//	GET  /v1/models/{name}/sweep?lo=&hi=&steps=   → per-ε quality curve
//	                           (clusters, noise fraction, SSE) cut from the
//	                           model's dendrogram; defaults lo=ε/2, hi=2ε,
//	                           steps=16
//	GET  /v1/models/{name}/clusters?eps=X   → exact clustering at ε
//	                           (members, trajectories, representatives)
//	DELETE /v1/models/{name}   → evict + cancel in-flight builds
//	GET  /v1/jobs/{id}         → job state + live phase/progress
//	GET  /v1/healthz           → liveness + model/job counts
//
// Every error is the one JSON envelope {"code","message","details"} (the
// legacy "error" field rides along); see api.go for the code ↔ status
// mapping. The pre-/v1 routes survive as thin aliases that answer with a
// Deprecation header and keep the old query-parameter build interface;
// /v1 builds take the consolidated JSON body instead and refuse silent
// defaults (eps/min_lns must be explicit unless auto estimation is on).
//
// Persistence: with -data-dir set, every finished build is written behind
// as <dir>/<name>.snap and cache misses read through to disk, so a daemon
// restarted on the same directory serves previously built models without
// re-running the clustering — only the classifier's spatial index is
// rebuilt on load. Snapshots are self-contained, validated on decode
// (corrupt, truncated, or future-version files are rejected with typed
// 422s, never a crash), and portable across replicas.
//
// Scale-out: -peers lists the replica set (full base URLs, comma
// separated) and -self names this process's own entry. Model names are
// sharded over the replicas by consistent hashing; a build request landing
// on a non-owner is forwarded to the owner (one hop, loop-guarded, the
// X-Traclus-Owner response header names it), duplicate builds across the
// fleet collapse into the owner's single-flight, and build jobs are polled
// on the owner. Classification stays local: a non-owner fetches the
// finished snapshot from the owner once, caches it (memory + disk), and
// serves every later query itself.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/ring"
	"repro/internal/service"

	traclus "repro"
)

func main() {
	fs := flag.NewFlagSet("traclusd", flag.ExitOnError)
	addr := fs.String("addr", ":8125", "listen address")
	workers := fs.Int("workers", 0, "parallelism for builds and classification (0 = all CPUs)")
	maxModels := fs.Int("max-models", 16, "LRU capacity of the model cache (0 = unbounded)")
	maxBody := fs.Int64("max-body", 32<<20, "maximum request body size in bytes")
	maxPoints := fs.Int("max-points", 0, "maximum points per upload (0 = default 5M)")
	maxTrajs := fs.Int("max-trajectories", 0, "maximum trajectories per upload (0 = default 500k)")
	maxBuilds := fs.Int("max-builds", 0, "maximum concurrently running builds (0 = default 4)")
	classifyTimeout := fs.Duration("classify-timeout", 30*time.Second, "per-request classification deadline")
	dataDir := fs.String("data-dir", "", "snapshot directory for durable models (empty = memory-only)")
	peers := fs.String("peers", "", "comma-separated replica base URLs for sharded serving (empty = standalone)")
	self := fs.String("self", "", "this replica's own entry in -peers")
	_ = fs.Parse(os.Args[1:])

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, strings.TrimRight(p, "/"))
			}
		}
		if *self == "" {
			log.Fatalf("traclusd: -peers requires -self")
		}
	}

	s, err := newServer(serverConfig{
		workers:         *workers,
		maxModels:       *maxModels,
		maxBody:         *maxBody,
		maxPoints:       *maxPoints,
		maxTrajectories: *maxTrajs,
		maxBuilds:       *maxBuilds,
		classifyTimeout: *classifyTimeout,
		dataDir:         *dataDir,
		peers:           peerList,
		self:            strings.TrimRight(*self, "/"),
		baseCtx:         ctx, // SIGTERM also cancels in-flight builds
	})
	if err != nil {
		log.Fatalf("traclusd: %v", err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("traclusd: listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("traclusd: %v", err)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight requests, then let
	// the write-behind snapshot saves finish — a SIGTERM right after a build
	// must not lose the model.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("traclusd: shutdown: %v", err)
	}
	s.store.Quiesce()
	log.Printf("traclusd: stopped")
}

// serverConfig carries the daemon's tunables; the zero value is usable in
// tests (unbounded cache, no body cap, long timeout, memory-only store,
// standalone).
type serverConfig struct {
	workers         int
	maxModels       int
	maxBody         int64
	maxPoints       int // cap on points per upload (0 = default)
	maxTrajectories int // cap on trajectories per upload (0 = default)
	maxBuilds       int // cap on concurrently running builds (0 = default)
	classifyTimeout time.Duration

	dataDir string   // snapshot directory ("" = memory-only)
	peers   []string // replica base URLs ("" or len 0 = standalone)
	self    string   // this replica's entry in peers

	// baseCtx parents every build-job context, so daemon shutdown also
	// cancels in-flight builds. nil means context.Background().
	baseCtx context.Context

	// buildModel is the model builder; tests inject counting/blocking
	// wrappers to verify single-flight dedup and cancellation. nil means
	// service.BuildCtx.
	buildModel func(ctx context.Context, name string, trs []traclus.Trajectory, cfg traclus.Config, est *service.EstimateRange, progress func(phase string, fraction float64)) (*service.Model, error)

	// buildTimedModel builds spatiotemporal models from timed trajectories.
	// nil means service.BuildTimedCtx.
	buildTimedModel func(ctx context.Context, name string, trs []traclus.TimedTrajectory, cfg traclus.Config, est *service.EstimateRange, progress func(phase string, fraction float64)) (*service.Model, error)
}

type server struct {
	cfg   serverConfig
	store *service.DiskStore
	jobs  *service.Jobs
	mux   *http.ServeMux
	ring  *ring.Ring   // nil when standalone
	peerc *http.Client // forwarding + snapshot-fetch client

	// buildSem gates concurrently running builds: each is a full clustering
	// run fanning out across all workers while holding its upload, so the
	// count must be bounded — single-flight only collapses same-name
	// duplicates. Handlers try-acquire (429 when full); the build goroutine
	// releases.
	buildSem chan struct{}
}

func newServer(cfg serverConfig) (*server, error) {
	if cfg.buildModel == nil {
		cfg.buildModel = service.BuildCtx
	}
	if cfg.buildTimedModel == nil {
		cfg.buildTimedModel = service.BuildTimedCtx
	}
	if cfg.baseCtx == nil {
		cfg.baseCtx = context.Background()
	}
	if cfg.classifyTimeout <= 0 {
		cfg.classifyTimeout = 30 * time.Second
	}
	if cfg.maxPoints == 0 {
		cfg.maxPoints = 5_000_000
	}
	if cfg.maxTrajectories == 0 {
		cfg.maxTrajectories = 500_000
	}
	if cfg.maxBuilds == 0 {
		cfg.maxBuilds = 4
	}
	store, err := service.NewDiskStore(cfg.dataDir, cfg.maxModels)
	if err != nil {
		return nil, err
	}
	s := &server{
		cfg:      cfg,
		store:    store,
		jobs:     service.NewJobs(),
		mux:      http.NewServeMux(),
		peerc:    &http.Client{Timeout: 60 * time.Second},
		buildSem: make(chan struct{}, cfg.maxBuilds),
	}
	if len(cfg.peers) > 0 {
		s.ring = ring.New(cfg.peers, 0)
	}
	s.register()
	return s, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// handleModelGet serves the model summary, fetching the snapshot from the
// owning replica on a local miss (sharded mode only).
func (s *server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	m, found, err := s.localModel(r, r.PathValue("name"))
	if err != nil {
		writeTypedError(w, err)
		return
	}
	if !found {
		writeErrorCode(w, http.StatusNotFound, codeNotFound, "model not found", nil)
		return
	}
	writeJSON(w, http.StatusOK, m.Summary())
}

// handleModelList reports the resident model names, most recently used
// first. Models only on disk (or on peers) are not listed — this is the
// serving cache, not a catalog.
func (s *server) handleModelList(w http.ResponseWriter, _ *http.Request) {
	names := s.store.Names()
	if names == nil {
		names = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": names})
}

// handleModelDelete evicts the named model (cache and snapshot file) and
// aborts any builds of it still in flight (their jobs finish as
// "cancelled"). 404 only when there was neither a cached model nor a
// running build. In sharded mode the delete is local to this replica.
func (s *server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	cancelled := s.jobs.CancelModel(name)
	deleted := s.store.Delete(name)
	if !deleted && cancelled == 0 {
		writeErrorCode(w, http.StatusNotFound, codeNotFound, "model not found", nil)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           "deleted",
		"deleted":          deleted,
		"cancelled_builds": cancelled,
	})
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeErrorCode(w, http.StatusNotFound, codeNotFound, "job not found", nil)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{
		"status": "ok",
		"models": s.store.Len(),
		"jobs":   s.jobs.Len(),
	}
	if s.cfg.dataDir != "" {
		resp["data_dir"] = s.cfg.dataDir
		resp["snapshot_loads"] = s.store.Loads()
		resp["snapshot_saves"] = s.store.Saves()
	}
	if s.ring != nil {
		resp["replicas"] = s.ring.Replicas()
		resp["self"] = s.cfg.self
	}
	writeJSON(w, http.StatusOK, resp)
}
