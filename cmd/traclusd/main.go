// Command traclusd is the TRACLUS serving daemon: it builds clustering
// models from uploaded trajectory data and answers online classification
// queries about new trajectories — the batch-model-then-serve-updates split
// the batch CLI cannot provide.
//
// Usage:
//
//	traclusd [-addr :8125] [-workers 0] [-max-models 16]
//	         [-max-body 33554432] [-max-points 5000000]
//	         [-max-trajectories 500000] [-max-builds 4]
//	         [-classify-timeout 30s]
//
// API:
//
//	POST /models?name=<id>&eps=<ε>&minlns=<m>[&format=csv|besttrack|telemetry]
//	     body: trajectory data in the given format
//	     → 202 {"id":"job-1","model":"<id>",...}; poll the job
//	GET  /jobs/{id}        → job state: running | done | failed | cancelled,
//	                         plus live {"phase","progress"} while running
//	GET  /models/{name}    → model summary + per-cluster stats
//	POST /models/{name}/classify
//	     body: trajectories as CSV (traj_id,x,y)
//	     → 200 {"model":"<id>","results":[{traj_id,cluster,distance},...]}
//	DELETE /models/{name}  → evict the model and cancel its in-flight builds
//	GET  /healthz          → liveness + model/job counts
//
// Build parameters mirror cmd/traclus flags: eps, minlns, mintrajs,
// undirected, cost_advantage, min_seg_len, gamma, species, and index
// (spatial-index backend: grid, rtree, or brute — every backend builds the
// identical model). auto=true estimates eps/minlns with the §4.4 entropy
// heuristic instead, searched over [auto_lo, auto_hi] (unset bounds derive
// from the data extent); the estimation shares the build's single index
// with the clustering, and the summary reports the chosen values. Invalid
// parameters (NaN/negative ε, bad weights, unknown index names, …) are
// rejected with 400 and the typed validation message; oversized bodies
// with 413. Model builds are
// asynchronous, cancellable, and deduplicated: concurrent builds of the
// same name share one underlying clustering run, job polling streams the
// pipeline's live phase/fraction progress, DELETE on a still-building name
// aborts the build (the job finishes as "cancelled", distinct from
// "failed"), and finished models are served from an LRU cache. A POST for a
// name already in the cache answers 200 with {"cached":true} and does not
// rebuild — DELETE the model first to rebuild with new data or parameters.
//
// Context mapping: a classification whose client disconnects is logged as
// a 499-style abandonment (no response can be written); one that exhausts
// its own deadline with nothing completed answers 504.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"regexp"
	"strconv"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/trackio"

	traclus "repro"
)

func main() {
	fs := flag.NewFlagSet("traclusd", flag.ExitOnError)
	addr := fs.String("addr", ":8125", "listen address")
	workers := fs.Int("workers", 0, "parallelism for builds and classification (0 = all CPUs)")
	maxModels := fs.Int("max-models", 16, "LRU capacity of the model cache (0 = unbounded)")
	maxBody := fs.Int64("max-body", 32<<20, "maximum request body size in bytes")
	maxPoints := fs.Int("max-points", 0, "maximum points per upload (0 = default 5M)")
	maxTrajs := fs.Int("max-trajectories", 0, "maximum trajectories per upload (0 = default 500k)")
	maxBuilds := fs.Int("max-builds", 0, "maximum concurrently running builds (0 = default 4)")
	classifyTimeout := fs.Duration("classify-timeout", 30*time.Second, "per-request classification deadline")
	_ = fs.Parse(os.Args[1:])

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := newServer(serverConfig{
		workers:         *workers,
		maxModels:       *maxModels,
		maxBody:         *maxBody,
		maxPoints:       *maxPoints,
		maxTrajectories: *maxTrajs,
		maxBuilds:       *maxBuilds,
		classifyTimeout: *classifyTimeout,
		baseCtx:         ctx, // SIGTERM also cancels in-flight builds
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("traclusd: listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("traclusd: %v", err)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight requests.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("traclusd: shutdown: %v", err)
	}
	log.Printf("traclusd: stopped")
}

// serverConfig carries the daemon's tunables; the zero value is usable in
// tests (unbounded cache, no body cap, long timeout).
type serverConfig struct {
	workers         int
	maxModels       int
	maxBody         int64
	maxPoints       int // cap on points per upload (0 = default)
	maxTrajectories int // cap on trajectories per upload (0 = default)
	maxBuilds       int // cap on concurrently running builds (0 = default)
	classifyTimeout time.Duration

	// baseCtx parents every build-job context, so daemon shutdown also
	// cancels in-flight builds. nil means context.Background().
	baseCtx context.Context

	// buildModel is the model builder; tests inject counting/blocking
	// wrappers to verify single-flight dedup and cancellation. nil means
	// service.BuildCtx.
	buildModel func(ctx context.Context, name string, trs []traclus.Trajectory, cfg traclus.Config, est *service.EstimateRange, progress func(phase string, fraction float64)) (*service.Model, error)
}

type server struct {
	cfg   serverConfig
	store *service.Store
	jobs  *service.Jobs
	mux   *http.ServeMux

	// buildSem gates concurrently running builds: each is a full clustering
	// run fanning out across all workers while holding its upload, so the
	// count must be bounded — single-flight only collapses same-name
	// duplicates. Handlers try-acquire (429 when full); the build goroutine
	// releases.
	buildSem chan struct{}
}

func newServer(cfg serverConfig) *server {
	if cfg.buildModel == nil {
		cfg.buildModel = service.BuildCtx
	}
	if cfg.baseCtx == nil {
		cfg.baseCtx = context.Background()
	}
	if cfg.classifyTimeout <= 0 {
		cfg.classifyTimeout = 30 * time.Second
	}
	if cfg.maxPoints == 0 {
		cfg.maxPoints = 5_000_000
	}
	if cfg.maxTrajectories == 0 {
		cfg.maxTrajectories = 500_000
	}
	if cfg.maxBuilds == 0 {
		cfg.maxBuilds = 4
	}
	s := &server{
		cfg:      cfg,
		store:    service.NewStore(cfg.maxModels),
		jobs:     service.NewJobs(),
		mux:      http.NewServeMux(),
		buildSem: make(chan struct{}, cfg.maxBuilds),
	}
	s.mux.HandleFunc("POST /models", s.handleBuild)
	s.mux.HandleFunc("GET /models/{name}", s.handleModelGet)
	s.mux.HandleFunc("DELETE /models/{name}", s.handleModelDelete)
	s.mux.HandleFunc("POST /models/{name}/classify", s.handleClassify)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

var modelName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// handleBuild reads the full training upload synchronously (the body dies
// with the request), then clusters asynchronously: the response is a 202
// with a job to poll. Duplicate concurrent builds of one name collapse into
// a single run via the store's single-flight path.
func (s *server) handleBuild(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if !modelName.MatchString(name) {
		writeError(w, http.StatusBadRequest, "model name must match "+modelName.String())
		return
	}
	// A name already in the cache is answered explicitly instead of
	// silently dropping the new upload: the client learns the model was
	// served from cache and must DELETE first to rebuild with new data or
	// parameters.
	if _, ok := s.store.Get(name); ok {
		writeJSON(w, http.StatusOK, map[string]any{
			"model":  name,
			"state":  service.JobDone,
			"cached": true,
		})
		return
	}
	cfg, est, err := buildConfigFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg.Workers = s.cfg.workers
	if est == nil {
		if err := cfg.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	} else if err := cfg.ValidateForEstimation(); err != nil {
		// Eps/MinLns are what auto estimation finds; everything else must
		// still be well-formed.
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	format := trackio.FormatCSV
	if f := r.URL.Query().Get("format"); f != "" {
		if format, err = trackio.ParseFormat(f); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	trs, err := s.readBody(w, r, format)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	if len(trs) == 0 {
		writeError(w, http.StatusBadRequest, "no trajectories in request body")
		return
	}
	if est != nil {
		// Absent bounds derive from the data extent (the CLI's -auto
		// rule), each side independently so an explicit single bound
		// survives — presence-tested, so an explicit auto_lo=0 is a bound
		// violation, not a request for the default. The combined interval
		// is then validated here, synchronously — bad bounds must answer
		// 400, not a failed async job.
		defLo, defHi := traclus.DefaultEstimationRange(trs)
		if r.URL.Query().Get("auto_lo") == "" {
			est.Lo = defLo
		}
		if r.URL.Query().Get("auto_hi") == "" {
			est.Hi = defHi
		}
		if !(est.Lo > 0) || !(est.Hi > est.Lo) {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("auto estimation bounds must satisfy 0 < lo < hi, got [%v, %v]", est.Lo, est.Hi))
			return
		}
	}
	// Only requests that may start a fresh clustering run consume a build
	// slot and retain their upload; a request for a name already in flight
	// joins that build instead — its job merely waits on the shared outcome
	// (Store.Wait), so it neither 429s unrelated builds nor parks its
	// parsed body for the build's duration. The Pending check is advisory:
	// a race can let same-name duplicates each take a slot (the semaphore
	// tolerates the over-count; single-flight still runs one build), or
	// land a join on a build that just failed, which reports a retryable
	// job failure.
	joins := s.store.Pending(name)
	var startJob func(ctx context.Context, update func(phase string, fraction float64)) (string, error)
	if joins {
		startJob = func(ctx context.Context, _ func(string, float64)) (string, error) {
			// The joiner waits under its own job context, so cancelling it
			// (or DELETE on the model) releases this waiter even though the
			// shared build belongs to another job.
			_, found, err := s.store.WaitCtx(ctx, name)
			if err != nil {
				return "", err
			}
			if !found {
				return "", fmt.Errorf("concurrent build of %q failed and was dropped; retry", name)
			}
			return "deduplicated into a concurrent build of this model; this request's upload was not used", nil
		}
	} else {
		select {
		case s.buildSem <- struct{}{}:
		default:
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("too many builds in flight (max %d); retry after a job finishes", s.cfg.maxBuilds))
			return
		}
		startJob = func(ctx context.Context, update func(phase string, fraction float64)) (string, error) {
			defer func() { <-s.buildSem }()
			_, built, err := s.store.GetOrBuild(name, func() (*service.Model, error) {
				return s.cfg.buildModel(ctx, name, trs, cfg, est, update)
			})
			if err == nil && !built {
				return "deduplicated into a concurrent build of this model; this request's upload was not used", nil
			}
			return "", err
		}
	}
	writeJSON(w, http.StatusAccepted, s.jobs.Start(s.cfg.baseCtx, name, startJob))
}

// readBody parses the request body in the given format under the configured
// size cap. CSV goes through the streaming decoder so hostile inputs are
// bounded before they are materialised.
func (s *server) readBody(w http.ResponseWriter, r *http.Request, format trackio.Format) ([]traclus.Trajectory, error) {
	body := r.Body
	if s.cfg.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.maxBody)
	}
	var trs []traclus.Trajectory
	var err error
	if format == trackio.FormatCSV {
		d := trackio.NewCSVDecoder(body)
		d.MaxPoints = s.cfg.maxPoints
		d.MaxTrajectories = s.cfg.maxTrajectories
		trs, err = d.DecodeAllCSV()
		// Merge non-contiguous runs of one id so the daemon parses CSV
		// exactly like the CLI's ReadCSV, interleaved ids included.
		if err == nil {
			trs = trackio.MergeByID(trs)
		}
	} else {
		trs, err = trackio.Read(body, format, r.URL.Query().Get("species"))
		if err == nil {
			// These formats have no streaming decoder yet; enforce the same
			// per-upload caps post-parse so they are never silently wider
			// than the CSV path.
			err = checkUploadLimits(trs, s.cfg.maxPoints, s.cfg.maxTrajectories)
		}
	}
	if err != nil {
		// A body truncated at the size cap surfaces as a parse error on the
		// cut-off line before the reader reports the cap; probe one more
		// byte so such failures answer 413 rather than 400.
		var maxErr *http.MaxBytesError
		if !errors.As(err, &maxErr) {
			var b [1]byte
			if _, perr := body.Read(b[:]); perr != nil && errors.As(perr, &maxErr) {
				return nil, perr
			}
		}
		return nil, err
	}
	return trs, nil
}

// checkUploadLimits applies the points/trajectories caps to an already
// parsed upload, mirroring the CSVDecoder's streaming enforcement.
func checkUploadLimits(trs []traclus.Trajectory, maxPoints, maxTrajs int) error {
	if maxTrajs > 0 && len(trs) > maxTrajs {
		return &trackio.LimitError{What: "trajectories", Limit: maxTrajs}
	}
	if maxPoints > 0 {
		total := 0
		for _, tr := range trs {
			total += len(tr.Points)
		}
		if total > maxPoints {
			return &trackio.LimitError{What: "points", Limit: maxPoints}
		}
	}
	return nil
}

func buildConfigFromQuery(r *http.Request) (traclus.Config, *service.EstimateRange, error) {
	cfg := traclus.Config{Eps: 30, MinLns: 6}
	q := r.URL.Query()
	var est *service.EstimateRange
	if v := q.Get("auto"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return cfg, nil, fmt.Errorf("bad auto %q", v)
		}
		if b {
			est = &service.EstimateRange{}
		}
	}
	floats := map[string]*float64{
		"eps":            &cfg.Eps,
		"minlns":         &cfg.MinLns,
		"cost_advantage": &cfg.CostAdvantage,
		"min_seg_len":    &cfg.MinSegmentLength,
		"gamma":          &cfg.Gamma,
	}
	if est != nil {
		floats["auto_lo"], floats["auto_hi"] = &est.Lo, &est.Hi
	}
	for key, dst := range floats {
		v := q.Get(key)
		if v == "" {
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return cfg, nil, fmt.Errorf("bad %s %q", key, v)
		}
		*dst = f
	}
	if v := q.Get("mintrajs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return cfg, nil, fmt.Errorf("bad mintrajs %q", v)
		}
		cfg.MinTrajs = n
	}
	if v := q.Get("undirected"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return cfg, nil, fmt.Errorf("bad undirected %q", v)
		}
		cfg.Undirected = b
	}
	if v := q.Get("index"); v != "" {
		// Unknown backend names surface the typed *ConfigError as a 400.
		kind, err := traclus.ParseIndexKind(v)
		if err != nil {
			return cfg, nil, err
		}
		cfg.Index = kind
	}
	return cfg, est, nil
}

func (s *server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	m, ok := s.store.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "model not found")
		return
	}
	writeJSON(w, http.StatusOK, m.Summary())
}

// handleModelDelete evicts the named model and aborts any builds of it
// still in flight (their jobs finish as "cancelled"). 404 only when there
// was neither a cached model nor a running build.
func (s *server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	cancelled := s.jobs.CancelModel(name)
	deleted := s.store.Delete(name)
	if !deleted && cancelled == 0 {
		writeError(w, http.StatusNotFound, "model not found")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           "deleted",
		"deleted":          deleted,
		"cancelled_builds": cancelled,
	})
}

func (s *server) handleClassify(w http.ResponseWriter, r *http.Request) {
	m, ok := s.store.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "model not found")
		return
	}
	trs, err := s.readBody(w, r, trackio.FormatCSV)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	if len(trs) == 0 {
		writeError(w, http.StatusBadRequest, "no trajectories in request body")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.classifyTimeout)
	defer cancel()
	results := m.ClassifyBatch(ctx, trs, s.cfg.workers)
	if err := r.Context().Err(); err != nil {
		// Cancellation and deadline map differently: a vanished client is a
		// 499-style abandonment (no response can reach anyone — log it so
		// operators can tell dropped clients from slow models), while our
		// own classify deadline falls through to the 504/partial logic.
		if errors.Is(err, context.Canceled) {
			log.Printf("traclusd: %s %s: client disconnected before response (499): %v", r.Method, r.URL.Path, err)
			return
		}
		log.Printf("traclusd: %s %s: request context ended: %v", r.Method, r.URL.Path, err)
		return
	}
	// On deadline expiry, completed assignments are still returned (the
	// stragglers carry the context error per item); a batch where nothing
	// completed is a plain timeout.
	timedOut := errors.Is(ctx.Err(), context.DeadlineExceeded)
	if timedOut {
		done := 0
		for _, a := range results {
			if a.Err == "" {
				done++
			}
		}
		if done == 0 {
			writeError(w, http.StatusGatewayTimeout, "classification timed out")
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model":     m.Name(),
		"results":   results,
		"timed_out": timedOut,
	})
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "job not found")
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"models": s.store.Len(),
		"jobs":   s.jobs.Len(),
	})
}

// writeBodyError maps body-read failures to status codes: size-cap hits are
// 413, everything else (parse errors) 400.
func writeBodyError(w http.ResponseWriter, err error) {
	var maxErr *http.MaxBytesError
	var limitErr *trackio.LimitError
	if errors.As(err, &maxErr) || errors.As(err, &limitErr) {
		writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("traclusd: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
