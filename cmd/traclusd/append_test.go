package main

// The append endpoint over HTTP: a POST grows the served model in place
// (epoch bumps, summary matches a from-scratch batch build), errors answer
// the typed envelope (404 unknown, 409 snapshot-restored, 422 geometry
// mismatch, 400 malformed), sweep queries after an append cover the grown
// item set, and in sharded mode the request forwards to the owner replica.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"slices"
	"testing"

	"repro/internal/ring"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/trackio"

	traclus "repro"
)

// appendTracks is a second corridor scene with ids disjoint from
// trainingCSV's, so the grown model has an unambiguous trajectory set.
func appendTracks() []traclus.Trajectory {
	trs := synth.CorridorScene(2, 6, 20, 4, 17)
	for i := range trs {
		trs[i].ID += 5000
	}
	return trs
}

func postAppend(t *testing.T, ts, name string, req AppendRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return doJSON(t, http.MethodPost, ts+"/v1/models/"+name+"/append", string(body), out)
}

// TestV1AppendEndToEnd: build, append, and verify the appended model is
// the batch model — same summary as a from-scratch build over the
// concatenated data — with the epoch advanced and classify still serving.
func TestV1AppendEndToEnd(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 2})
	train, csv := trainingCSV(t)
	extra := appendTracks()

	v1Build(t, ts.URL, BuildRequest{
		Name: "grow", Data: csv,
		Config: BuildConfig{
			Eps: f64(30), MinLns: f64(6),
			CostAdvantage: f64(15), MinSegmentLength: f64(40),
		},
	})
	var before service.Summary
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models/grow", "", &before); code != http.StatusOK {
		t.Fatalf("GET before append = %d", code)
	}
	if before.Epoch != 0 {
		t.Fatalf("fresh build epoch = %d, want 0", before.Epoch)
	}

	var appended service.Summary
	if code := postAppend(t, ts.URL, "grow", AppendRequest{Data: csvOf(t, extra...)}, &appended); code != http.StatusOK {
		t.Fatalf("POST append = %d", code)
	}
	if appended.Epoch != 1 {
		t.Errorf("appended epoch = %d, want 1", appended.Epoch)
	}
	if want := len(train) + len(extra); appended.Trajectories != want {
		t.Errorf("appended trajectories = %d, want %d", appended.Trajectories, want)
	}

	// The summary endpoint serves the new epoch immediately.
	var after service.Summary
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models/grow", "", &after); code != http.StatusOK {
		t.Fatalf("GET after append = %d", code)
	}
	if after.Epoch != 1 || after.TotalSegments != appended.TotalSegments {
		t.Errorf("served summary %+v does not match the append response %+v", after, appended)
	}

	// Batch ground truth: a from-scratch build over the concatenated data
	// must agree on everything the clustering determines.
	v1Build(t, ts.URL, BuildRequest{
		Name: "batch", Data: csvOf(t, append(slices.Clone(train), extra...)...),
		Config: BuildConfig{
			Eps: f64(30), MinLns: f64(6),
			CostAdvantage: f64(15), MinSegmentLength: f64(40),
		},
	})
	var batch service.Summary
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models/batch", "", &batch); code != http.StatusOK {
		t.Fatalf("GET batch = %d", code)
	}
	if appended.Clusters != batch.Clusters || appended.TotalSegments != batch.TotalSegments ||
		appended.NoiseSegments != batch.NoiseSegments || appended.RemovedClusters != batch.RemovedClusters ||
		appended.QMeasure != batch.QMeasure {
		t.Errorf("appended model diverges from batch build:\nappend: %+v\nbatch:  %+v", appended, batch)
	}

	// Classification serves on the appended epoch.
	var classifyResp struct {
		Results []service.Assignment `json:"results"`
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/models/grow/classify", csvOf(t, extra[0]), &classifyResp); code != http.StatusOK {
		t.Fatalf("classify after append = %d", code)
	}
	if len(classifyResp.Results) != 1 || classifyResp.Results[0].Err != "" {
		t.Fatalf("classify results after append: %+v", classifyResp.Results)
	}
}

// TestV1AppendErrors is the table of envelope paths that never reach the
// clustering layer.
func TestV1AppendErrors(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 1})
	_, csv := trainingCSV(t)
	v1Build(t, ts.URL, BuildRequest{
		Name: "target", Data: csv,
		Config: BuildConfig{
			Eps: f64(30), MinLns: f64(6),
			CostAdvantage: f64(15), MinSegmentLength: f64(40),
		},
	})
	extraCSV := csvOf(t, appendTracks()...)

	cases := []struct {
		name   string
		model  string
		body   string
		status int
		code   string
	}{
		{"unknown model", "ghost", `{"data":` + mustJSONString(extraCSV) + `}`, http.StatusNotFound, codeNotFound},
		{"bad model name", "bad*name", `{"data":"x"}`, http.StatusBadRequest, codeInvalidRequest},
		{"unknown field", "target", `{"data":"x","eps":30}`, http.StatusBadRequest, codeInvalidRequest},
		{"not json", "target", "traj_id,x,y\n1,0,0\n", http.StatusBadRequest, codeInvalidRequest},
		{"empty data", "target", `{"data":""}`, http.StatusBadRequest, codeInvalidRequest},
		{"bad format", "target", `{"format":"parquet","data":"x"}`, http.StatusBadRequest, codeInvalidRequest},
		{"malformed rows", "target", `{"data":"traj_id,x,y\n1,2\n"}`, http.StatusBadRequest, codeInvalidRequest},
	}
	for _, tc := range cases {
		var env envelope
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/models/"+tc.model+"/append", tc.body, &env)
		if code != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.status)
			continue
		}
		if env.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, env.Code, tc.code)
		}
		if env.Message == "" || env.Legacy != env.Message {
			t.Errorf("%s: envelope %+v missing message/legacy mirror", tc.name, env)
		}
	}
	// None of the failures minted an epoch.
	var sum service.Summary
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models/target", "", &sum); code != http.StatusOK || sum.Epoch != 0 {
		t.Fatalf("model after failed appends: status %d epoch %d, want 200 epoch 0", code, sum.Epoch)
	}
}

func mustJSONString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestV1AppendSnapshotRestored409: a model imported from a snapshot has no
// training geometry to grow — the append conflicts with the model's state.
func TestV1AppendSnapshotRestored409(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 1})
	_, csv := trainingCSV(t)
	v1Build(t, ts.URL, BuildRequest{
		Name: "origin", Data: csv,
		Config: BuildConfig{
			Eps: f64(30), MinLns: f64(6),
			CostAdvantage: f64(15), MinSegmentLength: f64(40),
		},
	})
	resp, err := http.Get(ts.URL + "/v1/models/origin/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot export = %d, %v", resp.StatusCode, err)
	}
	putReq, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/frozen/snapshot", bytes.NewReader(snap))
	putResp, err := http.DefaultClient.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot import = %d", putResp.StatusCode)
	}

	var env envelope
	if code := postAppend(t, ts.URL, "frozen", AppendRequest{Data: csvOf(t, appendTracks()...)}, &env); code != http.StatusConflict {
		t.Fatalf("append to snapshot-restored model = %d, want 409", code)
	}
	if env.Code != codeConflict {
		t.Errorf("code %q, want %q", env.Code, codeConflict)
	}
	// The original, which still holds its appender, keeps accepting.
	var sum service.Summary
	if code := postAppend(t, ts.URL, "origin", AppendRequest{Data: csvOf(t, appendTracks()...)}, &sum); code != http.StatusOK || sum.Epoch != 1 {
		t.Fatalf("append to original = %d epoch %d, want 200 epoch 1", code, sum.Epoch)
	}
}

// TestV1AppendGeometryMismatch: a spatiotemporal model rejects data with no
// timestamp column as 422 geometry_mismatch, and accepts timed CSV.
func TestV1AppendGeometryMismatch(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 2})
	v1Build(t, ts.URL, BuildRequest{
		Name: "st", Data: timedTrainingCSV(t),
		Config: BuildConfig{
			Eps: f64(30), MinLns: f64(6),
			CostAdvantage: f64(15), MinSegmentLength: f64(40),
			Geometry: "spatiotemporal", TemporalWeight: f64(0.02),
		},
	})

	var env envelope
	if code := postAppend(t, ts.URL, "st", AppendRequest{Format: "besttrack", Data: "irrelevant"}, &env); code != http.StatusUnprocessableEntity {
		t.Fatalf("besttrack append to spatiotemporal model = %d, want 422", code)
	}
	if env.Code != codeGeometryBad {
		t.Errorf("code %q, want %q", env.Code, codeGeometryBad)
	}

	// Timed CSV appends fine and advances the epoch.
	extra := synth.TimedCorridorScene(2, 4, 20, 4, 29, 60, 10)
	for i := range extra {
		extra[i].ID += 5000
	}
	var buf bytes.Buffer
	if err := trackio.WriteTimedCSV(&buf, extra); err != nil {
		t.Fatal(err)
	}
	var sum service.Summary
	if code := postAppend(t, ts.URL, "st", AppendRequest{Data: buf.String()}, &sum); code != http.StatusOK {
		t.Fatalf("timed append = %d", code)
	}
	if sum.Epoch != 1 || sum.Geometry != "spatiotemporal" {
		t.Errorf("timed append summary: epoch %d geometry %q", sum.Epoch, sum.Geometry)
	}
}

// TestV1AppendSweepServesGrownModel is the staleness regression over HTTP:
// a sweep/clusters query materialises the dendrogram, an append lands, and
// the next query must answer over the post-append item set — never a cut
// of the stale pre-append merge structure.
func TestV1AppendSweepServesGrownModel(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 2})
	sum := buildSweepModel(t, ts.URL)

	// Materialise the pre-append dendrogram server-side.
	var pre service.CutResult
	url := fmt.Sprintf("%s/v1/models/sweepable/clusters?eps=%g", ts.URL, sum.Eps)
	if code := doJSON(t, http.MethodGet, url, "", &pre); code != http.StatusOK {
		t.Fatalf("GET clusters before append = %d", code)
	}
	if pre.TotalSegments != sum.TotalSegments {
		t.Fatalf("pre-append cut covers %d segments, want %d", pre.TotalSegments, sum.TotalSegments)
	}

	var appended service.Summary
	if code := postAppend(t, ts.URL, "sweepable", AppendRequest{Data: csvOf(t, appendTracks()...)}, &appended); code != http.StatusOK {
		t.Fatalf("append = %d", code)
	}
	if appended.TotalSegments <= sum.TotalSegments {
		t.Fatalf("append did not grow the model: %d -> %d segments", sum.TotalSegments, appended.TotalSegments)
	}

	var post service.CutResult
	if code := doJSON(t, http.MethodGet, url, "", &post); code != http.StatusOK {
		t.Fatalf("GET clusters after append = %d", code)
	}
	if post.TotalSegments != appended.TotalSegments {
		t.Errorf("post-append cut covers %d segments, want %d — served a stale dendrogram", post.TotalSegments, appended.TotalSegments)
	}
	var sweep sweepResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models/sweepable/sweep?lo=10&hi=60&steps=3", "", &sweep); code != http.StatusOK {
		t.Fatalf("GET sweep after append = %d", code)
	}
	for _, p := range sweep.Points {
		if p.QMeasure != p.TotalSSE+p.NoisePenalty {
			t.Errorf("eps=%g: q_measure %g ≠ sse %g + penalty %g", p.Eps, p.QMeasure, p.TotalSSE, p.NoisePenalty)
		}
	}
}

// TestShardedAppendForwardsToOwner: an append landing on a non-owner
// replica forwards to the owner, which grows its live model; the client
// sees the new epoch and the owner header.
func TestShardedAppendForwardsToOwner(t *testing.T) {
	servers, urls, builds := replicaSet(t, 3)
	_, csv := trainingCSV(t)
	const name = "grown-shard"
	ownerURL := ring.New(urls, 0).Owner(name)
	ownerIdx := slices.Index(urls, ownerURL)
	nonOwner := (ownerIdx + 1) % len(urls)

	var job service.Job
	if code := doJSON(t, http.MethodPost,
		ownerURL+"/models?name="+name+"&"+shardParams, csv, &job); code != http.StatusAccepted {
		t.Fatalf("owner POST = %d", code)
	}
	if done := awaitJob(t, ownerURL, job.ID); done.State != service.JobDone {
		t.Fatalf("owner build failed: %s", done.Error)
	}

	// Append via a non-owner: must forward, not 404 locally.
	var sum service.Summary
	if code := postAppend(t, urls[nonOwner], name, AppendRequest{Data: csvOf(t, appendTracks()...)}, &sum); code != http.StatusOK {
		t.Fatalf("append via non-owner = %d", code)
	}
	if sum.Epoch != 1 {
		t.Errorf("forwarded append epoch = %d, want 1", sum.Epoch)
	}
	// The owner holds the grown model; no replica ran a clustering build
	// beyond the original one.
	m, ok, err := servers[ownerIdx].store.Get(name)
	if err != nil || !ok {
		t.Fatalf("owner lost the model (ok=%v err=%v)", ok, err)
	}
	if m.Epoch() != 1 {
		t.Errorf("owner-resident epoch = %d, want 1", m.Epoch())
	}
	var total int64
	for _, b := range builds {
		total += b.Load()
	}
	if total != 1 {
		t.Errorf("%d clustering runs after append, want 1 (appends never rebuild)", total)
	}
}
