package main

// Multi-ε query endpoints: GET /v1/models/{name}/sweep walks the per-ε
// quality curve and GET /v1/models/{name}/clusters reconstructs the exact
// clustering at one ε — both served from the model's precomputed merge
// structure (internal/dendro), never by re-running distance kernels.
// Parameter validation is split: unparsable numbers are rejected here with
// invalid_request, while range rules (positivity, lo < hi, the step cap)
// live in the service layer as typed *traclus.ConfigError values that
// writeTypedError maps to the invalid_config envelope.

import (
	"net/http"
	"strconv"

	"repro/internal/service"
)

// defaultSweepSteps is the grid resolution when the request omits steps.
const defaultSweepSteps = 16

// sweepResponse is the wire shape of GET /v1/models/{name}/sweep.
type sweepResponse struct {
	Model  string               `json:"model"`
	Lo     float64              `json:"lo"`
	Hi     float64              `json:"hi"`
	Steps  int                  `json:"steps"`
	Points []service.SweepPoint `json:"points"`
}

// queryFloat parses an optional float query parameter, falling back to def
// when absent. ok=false means the value was present but unparsable.
func queryFloat(r *http.Request, key string, def float64) (v float64, ok bool) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, true
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	m, found, err := s.localModel(r, r.PathValue("name"))
	if err != nil {
		writeTypedError(w, err)
		return
	}
	if !found {
		writeErrorCode(w, http.StatusNotFound, codeNotFound, "model not found", nil)
		return
	}
	// Defaults bracket the model's own ε: [ε/2, 2ε] spans the regime where
	// the clustering visibly coarsens, which is what an operator tuning
	// density wants to see first.
	eps := m.Summary().Eps
	lo, ok := queryFloat(r, "lo", eps/2)
	if !ok {
		writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest, "lo must be a number", nil)
		return
	}
	hi, ok := queryFloat(r, "hi", 2*eps)
	if !ok {
		writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest, "hi must be a number", nil)
		return
	}
	steps := defaultSweepSteps
	if raw := r.URL.Query().Get("steps"); raw != "" {
		steps, err = strconv.Atoi(raw)
		if err != nil {
			writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest, "steps must be an integer", nil)
			return
		}
	}
	pts, err := m.SweepQuality(r.Context(), lo, hi, steps)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sweepResponse{
		Model: m.Name(), Lo: lo, Hi: hi, Steps: steps, Points: pts,
	})
}

func (s *server) handleClustersAt(w http.ResponseWriter, r *http.Request) {
	m, found, err := s.localModel(r, r.PathValue("name"))
	if err != nil {
		writeTypedError(w, err)
		return
	}
	if !found {
		writeErrorCode(w, http.StatusNotFound, codeNotFound, "model not found", nil)
		return
	}
	eps, ok := queryFloat(r, "eps", m.Summary().Eps)
	if !ok {
		writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest, "eps must be a number", nil)
		return
	}
	cut, err := m.ClustersAt(r.Context(), eps)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, cut)
}
