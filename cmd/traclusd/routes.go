package main

// The daemon's entire routing surface is this one table. Every endpoint is
// a versioned /v1 pattern; pre-/v1 paths survive as aliases that serve the
// same handler (or, for builds, the legacy query-parameter handler) with a
// Deprecation header and a Link to the successor pattern. The table is
// pinned by a table-driven test over every method × path, so adding or
// renaming a route without updating the table — or registering one outside
// it — fails the suite.

import "net/http"

type route struct {
	method string
	// path is the /v1 pattern (net/http ServeMux syntax).
	path    string
	handler http.HandlerFunc
	// legacy is the deprecated alias pattern ("" = v1-only endpoint).
	legacy string
	// legacyHandler overrides handler on the alias (nil = same handler);
	// the build endpoint needs it because the legacy interface is query
	// parameters + raw body while v1 takes the JSON BuildRequest.
	legacyHandler http.HandlerFunc
}

func (s *server) routes() []route {
	return []route{
		{method: http.MethodGet, path: "/v1/healthz", handler: s.handleHealthz, legacy: "/healthz"},
		{method: http.MethodGet, path: "/v1/models", handler: s.handleModelList},
		{method: http.MethodPost, path: "/v1/models", handler: s.handleBuildV1, legacy: "/models", legacyHandler: s.handleBuildLegacy},
		{method: http.MethodGet, path: "/v1/models/{name}", handler: s.handleModelGet, legacy: "/models/{name}"},
		{method: http.MethodDelete, path: "/v1/models/{name}", handler: s.handleModelDelete, legacy: "/models/{name}"},
		{method: http.MethodPost, path: "/v1/models/{name}/classify", handler: s.handleClassify, legacy: "/models/{name}/classify"},
		{method: http.MethodPost, path: "/v1/models/{name}/append", handler: s.handleAppend},
		{method: http.MethodGet, path: "/v1/models/{name}/snapshot", handler: s.handleSnapshotGet},
		{method: http.MethodGet, path: "/v1/models/{name}/sweep", handler: s.handleSweep},
		{method: http.MethodGet, path: "/v1/models/{name}/clusters", handler: s.handleClustersAt},
		{method: http.MethodPut, path: "/v1/models/{name}/snapshot", handler: s.handleSnapshotPut},
		{method: http.MethodGet, path: "/v1/jobs/{id}", handler: s.handleJobGet, legacy: "/jobs/{id}"},
	}
}

// register installs the route table into the mux — the only place handlers
// are attached.
func (s *server) register() {
	for _, rt := range s.routes() {
		s.mux.HandleFunc(rt.method+" "+rt.path, rt.handler)
		if rt.legacy == "" {
			continue
		}
		h := rt.legacyHandler
		if h == nil {
			h = rt.handler
		}
		s.mux.HandleFunc(rt.method+" "+rt.legacy, deprecatedAlias(rt.path, h))
	}
}

// deprecatedAlias wraps a legacy route's handler with the RFC 8594-style
// deprecation signal: Deprecation: true plus a Link to the /v1 successor
// pattern. The response body is unchanged, so existing clients keep
// working while new ones can discover the migration target mechanically.
func deprecatedAlias(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}
