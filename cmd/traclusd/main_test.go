package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/trackio"

	traclus "repro"
)

func trainingCSV(t *testing.T) ([]traclus.Trajectory, string) {
	t.Helper()
	trs := synth.CorridorScene(2, 10, 24, 4, 11)
	var buf bytes.Buffer
	if err := trackio.WriteCSV(&buf, trs); err != nil {
		t.Fatal(err)
	}
	return trs, buf.String()
}

func csvOf(t *testing.T, trs ...traclus.Trajectory) string {
	t.Helper()
	var buf bytes.Buffer
	if err := trackio.WriteCSV(&buf, trs); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func testServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s %s response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

func awaitJob(t *testing.T, base, id string) service.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var job service.Job
		if code := doJSON(t, http.MethodGet, base+"/jobs/"+id, "", &job); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		if job.State != service.JobRunning {
			return job
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return service.Job{}
}

// TestBuildClassifyRoundTrip is the end-to-end serving scenario: upload a
// training set, poll the async build job, read the model summary, then
// classify training trajectories back into their own clusters.
func TestBuildClassifyRoundTrip(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 2})
	trs, csv := trainingCSV(t)

	var job service.Job
	code := doJSON(t, http.MethodPost,
		ts.URL+"/models?name=corridors&eps=30&minlns=6&cost_advantage=15&min_seg_len=40", csv, &job)
	if code != http.StatusAccepted {
		t.Fatalf("POST /models = %d", code)
	}
	if done := awaitJob(t, ts.URL, job.ID); done.State != service.JobDone {
		t.Fatalf("job finished as %s: %s", done.State, done.Error)
	}

	var sum service.Summary
	if code := doJSON(t, http.MethodGet, ts.URL+"/models/corridors", "", &sum); code != http.StatusOK {
		t.Fatalf("GET /models/corridors = %d", code)
	}
	if sum.Clusters != 2 {
		t.Fatalf("summary clusters = %d, want 2", sum.Clusters)
	}
	if len(sum.ClusterStats) != 2 {
		t.Fatalf("summary has %d cluster stats, want 2", len(sum.ClusterStats))
	}

	// Classify two training trajectories, one per corridor: each must land
	// in its own cluster (checked against the authoritative in-process run).
	res, err := traclus.Run(trs, traclus.Config{Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40})
	if err != nil {
		t.Fatal(err)
	}
	var classifyResp struct {
		Model   string               `json:"model"`
		Results []service.Assignment `json:"results"`
	}
	queries := []traclus.Trajectory{trs[0], trs[len(trs)-1]}
	code = doJSON(t, http.MethodPost, ts.URL+"/models/corridors/classify", csvOf(t, queries...), &classifyResp)
	if code != http.StatusOK {
		t.Fatalf("POST classify = %d", code)
	}
	if len(classifyResp.Results) != 2 {
		t.Fatalf("%d results, want 2", len(classifyResp.Results))
	}
	for i, a := range classifyResp.Results {
		if a.Err != "" {
			t.Fatalf("result %d: %s", i, a.Err)
		}
		want := -1
		for ci, c := range res.Clusters {
			for _, id := range c.Trajectories {
				if id == queries[i].ID {
					want = ci
				}
			}
		}
		if a.Cluster != want {
			t.Errorf("trajectory %d classified into %d, want its own cluster %d", a.TrajID, a.Cluster, want)
		}
	}
	if classifyResp.Results[0].Cluster == classifyResp.Results[1].Cluster {
		t.Error("trajectories from different corridors landed in the same cluster")
	}

	// Health reflects the cached model.
	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, health)
	}
	if health.Models != 1 {
		t.Errorf("healthz models = %d, want 1", health.Models)
	}

	// Evict and observe the 404.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/models/corridors", "", nil); code != http.StatusOK {
		t.Fatalf("DELETE = %d", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/models/corridors", "", nil); code != http.StatusNotFound {
		t.Fatalf("GET after delete = %d, want 404", code)
	}
}

// TestSingleFlightAndCacheHit verifies the acceptance criterion directly at
// the HTTP layer: N concurrent duplicate build requests run exactly one
// underlying build, and later builds of the same name are cache hits.
func TestSingleFlightAndCacheHit(t *testing.T) {
	var builds atomic.Int64
	release := make(chan struct{})
	cfg := serverConfig{
		workers:   1,
		maxBuilds: 16, // duplicates racing in before the entry exists may each take a slot
		buildModel: func(_ context.Context, name string, trs []traclus.Trajectory, c traclus.Config, _ *service.EstimateRange, _ func(string, float64)) (*service.Model, error) {
			builds.Add(1)
			<-release // hold the build so all duplicates overlap it
			return service.Build(name, trs, c)
		},
	}
	_, ts := testServer(t, cfg)
	_, csv := trainingCSV(t)

	const dup = 8
	jobs := make([]service.Job, dup)
	var wg sync.WaitGroup
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if code := doJSON(t, http.MethodPost,
				ts.URL+"/models?name=dup&eps=30&minlns=6&cost_advantage=15&min_seg_len=40", csv, &jobs[i]); code != http.StatusAccepted {
				t.Errorf("POST %d = %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	for builds.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := range jobs {
		if done := awaitJob(t, ts.URL, jobs[i].ID); done.State != service.JobDone {
			t.Fatalf("job %d finished as %s: %s", i, done.State, done.Error)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d underlying builds for %d concurrent requests, want exactly 1", n, dup)
	}

	// A fresh request after completion is an explicit cache hit: 200 with
	// cached=true, no job, and no new build.
	var hit struct {
		Model  string `json:"model"`
		Cached bool   `json:"cached"`
	}
	if code := doJSON(t, http.MethodPost,
		ts.URL+"/models?name=dup&eps=30&minlns=6", csv, &hit); code != http.StatusOK {
		t.Fatalf("POST after completion = %d, want 200 cache hit", code)
	}
	if !hit.Cached || hit.Model != "dup" {
		t.Fatalf("cache-hit response = %+v", hit)
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("cache hit triggered build #%d", n)
	}
}

func TestBuildRequestValidation(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	_, csv := trainingCSV(t)
	cases := []struct {
		name string
		url  string
		body string
		want int
	}{
		{"missing name", "/models", csv, http.StatusBadRequest},
		{"bad name", "/models?name=../etc", csv, http.StatusBadRequest},
		{"unparsable eps", "/models?name=m&eps=abc", csv, http.StatusBadRequest},
		{"NaN eps", "/models?name=m&eps=NaN", csv, http.StatusBadRequest},
		{"negative eps", "/models?name=m&eps=-4", csv, http.StatusBadRequest},
		{"infinite minlns", "/models?name=m&minlns=Inf", csv, http.StatusBadRequest},
		{"negative mintrajs", "/models?name=m&mintrajs=-2", csv, http.StatusBadRequest},
		{"bad mintrajs", "/models?name=m&mintrajs=x", csv, http.StatusBadRequest},
		{"bad undirected", "/models?name=m&undirected=maybe", csv, http.StatusBadRequest},
		{"bad format", "/models?name=m&format=parquet", csv, http.StatusBadRequest},
		{"malformed body", "/models?name=m", "traj_id,x,y\n1,2\n", http.StatusBadRequest},
		{"non-numeric body", "/models?name=m", "traj_id,x,y\n1,a,b\n", http.StatusBadRequest},
		{"empty body", "/models?name=m", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		var e struct {
			Error string `json:"error"`
		}
		if code := doJSON(t, http.MethodPost, ts.URL+tc.url, tc.body, &e); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		} else if e.Error == "" {
			t.Errorf("%s: no error message in body", tc.name)
		}
	}
	// Typed validation text must surface to the client.
	var e struct {
		Error string `json:"error"`
	}
	doJSON(t, http.MethodPost, ts.URL+"/models?name=m&eps=NaN", csv, &e)
	if !strings.Contains(e.Error, "Eps") || !strings.Contains(e.Error, "must be positive") {
		t.Errorf("NaN eps error %q does not carry the typed validation message", e.Error)
	}
}

func TestBodyTooLarge(t *testing.T) {
	_, ts := testServer(t, serverConfig{maxBody: 64})
	_, csv := trainingCSV(t)
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=m", csv, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", code)
	}
	// The streaming-decoder point cap is a second 413 path, independent of
	// the byte cap.
	_, ts = testServer(t, serverConfig{maxPoints: 10})
	var e struct {
		Error string `json:"error"`
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=m", csv, &e); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over point cap = %d, want 413", code)
	}
	if !strings.Contains(e.Error, "exceeds 10 points") {
		t.Errorf("point-cap error = %q", e.Error)
	}
}

// TestBuildConcurrencyCap pins the 429 guard: once maxBuilds builds are in
// flight, further distinct-name builds are rejected instead of piling up
// unbounded clustering runs.
func TestBuildConcurrencyCap(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	_, ts := testServer(t, serverConfig{
		workers:   1,
		maxBuilds: 1,
		buildModel: func(_ context.Context, name string, trs []traclus.Trajectory, c traclus.Config, _ *service.EstimateRange, _ func(string, float64)) (*service.Model, error) {
			started <- struct{}{}
			<-release
			return service.Build(name, trs, c)
		},
	})
	_, csv := trainingCSV(t)
	var job service.Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=a&eps=30&minlns=6", csv, &job); code != http.StatusAccepted {
		t.Fatalf("first build = %d", code)
	}
	<-started // the slot is definitely held
	var e struct {
		Error string `json:"error"`
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=b&eps=30&minlns=6", csv, &e); code != http.StatusTooManyRequests {
		t.Fatalf("build past the cap = %d, want 429", code)
	}
	if !strings.Contains(e.Error, "too many builds") {
		t.Errorf("429 body = %q", e.Error)
	}
	// A duplicate of the in-flight name joins it instead of consuming a
	// slot, so it is accepted even at the cap.
	var dupJob service.Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=a&eps=30&minlns=6", csv, &dupJob); code != http.StatusAccepted {
		t.Fatalf("duplicate of in-flight build = %d, want 202", code)
	}
	close(release)
	if done := awaitJob(t, ts.URL, dupJob.ID); done.State != service.JobDone {
		t.Fatalf("joined duplicate finished as %s: %s", done.State, done.Error)
	}
	if done := awaitJob(t, ts.URL, job.ID); done.State != service.JobDone {
		t.Fatalf("gated build finished as %s: %s", done.State, done.Error)
	}
	// The slot is free again.
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=b&eps=30&minlns=6", csv, &job); code != http.StatusAccepted {
		t.Fatalf("build after release = %d, want 202", code)
	}
	if done := awaitJob(t, ts.URL, job.ID); done.State != service.JobDone {
		t.Fatalf("post-release build finished as %s: %s", done.State, done.Error)
	}
}

// TestUploadCapsNonCSV pins that the per-upload point cap also guards the
// formats without a streaming decoder.
func TestUploadCapsNonCSV(t *testing.T) {
	_, ts := testServer(t, serverConfig{maxPoints: 10})
	trs := synth.CorridorScene(1, 2, 24, 4, 11)
	var buf bytes.Buffer
	if err := trackio.WriteBestTrack(&buf, trs); err != nil {
		t.Fatal(err)
	}
	var e struct {
		Error string `json:"error"`
	}
	code := doJSON(t, http.MethodPost, ts.URL+"/models?name=m&format=besttrack", buf.String(), &e)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("besttrack over point cap = %d, want 413", code)
	}
	if !strings.Contains(e.Error, "exceeds 10 points") {
		t.Errorf("413 body = %q", e.Error)
	}
}

// TestClassifyTimeout pins the deadline semantics: an expired context with
// zero completed assignments answers 504.
func TestClassifyTimeout(t *testing.T) {
	// The timeout only gates classification, so the build proceeds normally.
	_, ts := testServer(t, serverConfig{workers: 1, classifyTimeout: time.Nanosecond})
	_, csv := trainingCSV(t)
	var job service.Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=m&eps=30&minlns=6", csv, &job); code != http.StatusAccepted {
		t.Fatalf("POST /models = %d", code)
	}
	if done := awaitJob(t, ts.URL, job.ID); done.State != service.JobDone {
		t.Fatalf("build failed: %s", done.Error)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/models/m/classify", csv, nil); code != http.StatusGatewayTimeout {
		t.Fatalf("classify under 1ns deadline = %d, want 504", code)
	}
}

func TestClassifyErrorsHTTP(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 1})
	_, csv := trainingCSV(t)

	if code := doJSON(t, http.MethodPost, ts.URL+"/models/ghost/classify", csv, nil); code != http.StatusNotFound {
		t.Fatalf("classify against unknown model = %d, want 404", code)
	}
	var job service.Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=m&eps=30&minlns=6", csv, &job); code != http.StatusAccepted {
		t.Fatalf("POST /models = %d", code)
	}
	if done := awaitJob(t, ts.URL, job.ID); done.State != service.JobDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/models/m/classify", "not,a,csv\nrow", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed classify body = %d, want 400", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/models/m/classify", "", nil); code != http.StatusBadRequest {
		t.Fatalf("empty classify body = %d, want 400", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/jobs/job-999", "", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", code)
	}
}

// TestDeleteCancelsInFlightBuild pins the cancellation satellite: DELETE on
// a still-building model aborts the build — the injected builder blocks
// until its context ends — and the job finishes as "cancelled", distinct
// from "failed". A joined duplicate job is released too.
func TestDeleteCancelsInFlightBuild(t *testing.T) {
	started := make(chan struct{}, 8)
	_, ts := testServer(t, serverConfig{
		maxBuilds: 4,
		buildModel: func(ctx context.Context, _ string, _ []traclus.Trajectory, _ traclus.Config, _ *service.EstimateRange, _ func(string, float64)) (*service.Model, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	_, csv := trainingCSV(t)

	var job service.Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=m&eps=30&minlns=6", csv, &job); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	<-started // the build is definitely holding its context
	var dup service.Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=m&eps=30&minlns=6", csv, &dup); code != http.StatusAccepted {
		t.Fatalf("duplicate POST = %d", code)
	}

	var del struct {
		Status          string `json:"status"`
		Deleted         bool   `json:"deleted"`
		CancelledBuilds int    `json:"cancelled_builds"`
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/models/m", "", &del); code != http.StatusOK {
		t.Fatalf("DELETE = %d", code)
	}
	if del.CancelledBuilds < 1 || del.Deleted {
		t.Fatalf("DELETE response = %+v, want ≥1 cancelled build and no cached model", del)
	}
	if done := awaitJob(t, ts.URL, job.ID); done.State != service.JobCancelled {
		t.Fatalf("build job finished as %s (%s), want cancelled", done.State, done.Error)
	}
	// The joiner's own wait is cancelled with it.
	if done := awaitJob(t, ts.URL, dup.ID); done.State != service.JobCancelled && done.State != service.JobFailed {
		t.Fatalf("joined job finished as %s (%s), want cancelled/failed", done.State, done.Error)
	}
	// The name is buildable again afterwards — nothing was cached.
	if code := doJSON(t, http.MethodGet, ts.URL+"/models/m", "", nil); code != http.StatusNotFound {
		t.Fatalf("GET after cancelled build = %d, want 404", code)
	}
	// DELETE with neither a model nor a build is a 404.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/models/ghost", "", nil); code != http.StatusNotFound {
		t.Fatalf("DELETE ghost = %d, want 404", code)
	}
}

// TestJobReportsLiveProgress pins the progress satellite: while a build is
// running, polling its job returns the phase/fraction the builder last
// reported.
func TestJobReportsLiveProgress(t *testing.T) {
	reported := make(chan struct{})
	release := make(chan struct{})
	_, ts := testServer(t, serverConfig{
		buildModel: func(ctx context.Context, name string, trs []traclus.Trajectory, c traclus.Config, est *service.EstimateRange, progress func(string, float64)) (*service.Model, error) {
			progress("group", 0.5)
			close(reported)
			<-release
			return service.BuildCtx(ctx, name, trs, c, est, progress)
		},
	})
	_, csv := trainingCSV(t)
	var job service.Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=m&eps=30&minlns=6&cost_advantage=15&min_seg_len=40", csv, &job); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	<-reported
	var live service.Job
	if code := doJSON(t, http.MethodGet, ts.URL+"/jobs/"+job.ID, "", &live); code != http.StatusOK {
		t.Fatalf("GET job = %d", code)
	}
	if live.State != service.JobRunning || live.Phase != "group" || live.Progress != 0.5 {
		t.Fatalf("live job = %+v, want running at group/0.5", live)
	}
	close(release)
	done := awaitJob(t, ts.URL, job.ID)
	if done.State != service.JobDone {
		t.Fatalf("job finished as %s: %s", done.State, done.Error)
	}
	// The real build's progress stream ends on the final phase, complete.
	if done.Phase != "represent" || done.Progress != 1 {
		t.Fatalf("finished job progress = %s/%v, want represent/1", done.Phase, done.Progress)
	}
}

func TestFailedBuildReportsJobError(t *testing.T) {
	_, ts := testServer(t, serverConfig{
		buildModel: func(context.Context, string, []traclus.Trajectory, traclus.Config, *service.EstimateRange, func(string, float64)) (*service.Model, error) {
			return nil, fmt.Errorf("synthetic failure")
		},
	})
	_, csv := trainingCSV(t)
	var job service.Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=m&eps=30&minlns=6", csv, &job); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	done := awaitJob(t, ts.URL, job.ID)
	if done.State != service.JobFailed || !strings.Contains(done.Error, "synthetic failure") {
		t.Fatalf("job = %+v, want failed with synthetic failure", done)
	}
	// The failed model must not be cached.
	if code := doJSON(t, http.MethodGet, ts.URL+"/models/m", "", nil); code != http.StatusNotFound {
		t.Fatalf("GET failed model = %d, want 404", code)
	}
}

// TestBuildIndexBackendParam pins the end-to-end backend selection: a valid
// index name builds the identical model, an unknown one answers 400 with
// the typed validation message.
func TestBuildIndexBackendParam(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	_, csv := trainingCSV(t)

	var e struct{ Error string }
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=bad&eps=30&minlns=6&index=kdtree", csv, &e); code != http.StatusBadRequest {
		t.Fatalf("unknown index name: status %d, want 400", code)
	}
	if !strings.Contains(e.Error, "Index") || !strings.Contains(e.Error, "kdtree") {
		t.Errorf("unknown index error %q does not name the field and value", e.Error)
	}

	// Build the same data under two backends; the summaries must agree on
	// everything the clustering determines.
	sums := map[string]service.Summary{}
	for _, index := range []string{"rtree", "brute"} {
		var job service.Job
		code := doJSON(t, http.MethodPost,
			ts.URL+"/models?name="+index+"&eps=30&minlns=6&cost_advantage=15&min_seg_len=40&index="+index, csv, &job)
		if code != http.StatusAccepted {
			t.Fatalf("index=%s: status %d, want 202", index, code)
		}
		if got := awaitJob(t, ts.URL, job.ID); got.State != service.JobDone {
			t.Fatalf("index=%s: job finished %q (%s)", index, got.State, got.Error)
		}
		var sum service.Summary
		if code := doJSON(t, http.MethodGet, ts.URL+"/models/"+index, "", &sum); code != http.StatusOK {
			t.Fatalf("GET model %s: %d", index, code)
		}
		sums[index] = sum
	}
	if a, b := sums["rtree"], sums["brute"]; a.Clusters != b.Clusters ||
		a.NoiseSegments != b.NoiseSegments || a.TotalSegments != b.TotalSegments {
		t.Errorf("backends disagree: rtree=(%d,%d,%d) brute=(%d,%d,%d)",
			a.Clusters, a.NoiseSegments, a.TotalSegments,
			b.Clusters, b.NoiseSegments, b.TotalSegments)
	}
}

// TestBuildAutoEstimation: auto=true estimates eps/minlns inside the build
// (sharing its index) and the summary reports the chosen values; bad auto
// bounds and invalid non-estimated fields still answer 400.
func TestBuildAutoEstimation(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	trs, csv := trainingCSV(t)

	var job service.Job
	code := doJSON(t, http.MethodPost,
		ts.URL+"/models?name=auto&auto=true&auto_lo=5&auto_hi=60&cost_advantage=15&min_seg_len=40", csv, &job)
	if code != http.StatusAccepted {
		t.Fatalf("auto build: status %d, want 202", code)
	}
	if got := awaitJob(t, ts.URL, job.ID); got.State != service.JobDone {
		t.Fatalf("auto job finished %q (%s)", got.State, got.Error)
	}
	var sum service.Summary
	if code := doJSON(t, http.MethodGet, ts.URL+"/models/auto", "", &sum); code != http.StatusOK {
		t.Fatalf("GET auto model: %d", code)
	}
	est, err := traclus.EstimateParameters(trs, 5, 60, traclus.Config{CostAdvantage: 15, MinSegmentLength: 40})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Eps != est.Eps {
		t.Errorf("auto summary eps = %v, want estimated %v", sum.Eps, est.Eps)
	}

	var e struct{ Error string }
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=x&auto=maybe", csv, &e); code != http.StatusBadRequest {
		t.Fatalf("bad auto flag: status %d, want 400", code)
	}
	// eps is ignored (and unvalidated) under auto, but other fields are not.
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=x&auto=true&cost_advantage=-3", csv, &e); code != http.StatusBadRequest {
		t.Fatalf("bad cost_advantage under auto: status %d, want 400", code)
	}
}

// TestBuildAutoBoundsValidation: invalid auto bounds answer 400
// synchronously (never a failed async job), and a single explicit bound
// survives while the other derives from the data extent.
func TestBuildAutoBoundsValidation(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	_, csv := trainingCSV(t)
	var e struct{ Error string }
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=x&auto=true&auto_lo=60&auto_hi=5", csv, &e); code != http.StatusBadRequest {
		t.Fatalf("inverted auto bounds: status %d, want 400", code)
	}
	if !strings.Contains(e.Error, "0 < lo < hi") {
		t.Errorf("inverted-bounds error %q does not state the constraint", e.Error)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=x&auto=true&auto_lo=NaN", csv, &e); code != http.StatusBadRequest {
		t.Fatalf("NaN auto_lo: status %d, want 400", code)
	}
	// One-sided: auto_lo must survive, auto_hi defaults from the extent.
	var job service.Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=onesided&auto=true&auto_lo=5&cost_advantage=15&min_seg_len=40", csv, &job); code != http.StatusAccepted {
		t.Fatalf("one-sided auto bound: status %d, want 202", code)
	}
	if got := awaitJob(t, ts.URL, job.ID); got.State != service.JobDone {
		t.Fatalf("one-sided auto job finished %q (%s)", got.State, got.Error)
	}
}

// An explicit auto_lo=0 is a bound violation (400), not a request for the
// extent-derived default — presence decides defaulting, not the zero value.
func TestBuildAutoExplicitZeroBound(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	_, csv := trainingCSV(t)
	var e struct{ Error string }
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=x&auto=true&auto_lo=0&auto_hi=50", csv, &e); code != http.StatusBadRequest {
		t.Fatalf("explicit auto_lo=0: status %d, want 400", code)
	}
}
