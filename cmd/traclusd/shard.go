package main

// Sharded serving over the consistent-hash ring (internal/ring). The
// protocol is deliberately one-hop:
//
//   - Builds run on the owner. A build request landing on a non-owner is
//     forwarded verbatim to the owner, whose response (the job to poll)
//     streams back to the client; the X-Traclus-Owner header tells the
//     client where that job lives. The X-Traclus-Forwarded header is the
//     loop guard — a forwarded request is always served locally, so a
//     stale or disagreeing ring degrades to local service, never a cycle.
//   - Classification runs locally everywhere. A non-owner that misses both
//     its cache and its disk fetches the owner's finished snapshot once,
//     installs it (memory + disk), and serves every later query itself.
//
// Duplicate builds of one name across the fleet therefore collapse into
// the owner's single-flight — the dedupe test pins N replicas posting the
// same name to exactly one underlying clustering run.

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"

	"repro/internal/service"
)

const (
	// forwardedHeader marks a request already forwarded once (value: the
	// forwarding replica). Its presence forces local handling.
	forwardedHeader = "X-Traclus-Forwarded"
	// ownerHeader names the replica that owns the model a response is
	// about, so clients learn where the build job lives.
	ownerHeader = "X-Traclus-Owner"
)

// owner returns the replica owning name, or "" when standalone.
func (s *server) owner(name string) string {
	if s.ring == nil {
		return ""
	}
	return s.ring.Owner(name)
}

// forwardToOwner proxies a build request (method, URL, headers relevant to
// the build, and the already-read body) to the replica owning name. It
// reports true when it wrote the response — either the owner's reply or a
// 502 — and false when the request is local: standalone mode, we are the
// owner, or the request was already forwarded once.
func (s *server) forwardToOwner(w http.ResponseWriter, r *http.Request, name string, body []byte) bool {
	owner := s.owner(name)
	if owner == "" {
		return false
	}
	w.Header().Set(ownerHeader, owner)
	if owner == s.cfg.self || r.Header.Get(forwardedHeader) != "" {
		return false
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, owner+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		writeErrorCode(w, http.StatusBadGateway, codePeerUnreachable,
			fmt.Sprintf("forwarding to owner %s: %v", owner, err), nil)
		return true
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set(forwardedHeader, s.cfg.self)
	resp, err := s.peerc.Do(req)
	if err != nil {
		writeErrorCode(w, http.StatusBadGateway, codePeerUnreachable,
			fmt.Sprintf("forwarding to owner %s: %v", owner, err), map[string]any{"owner": owner})
		return true
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// The status line is gone; all we can do is log the broken relay.
		log.Printf("traclusd: relaying %s %s from %s: %v", r.Method, r.URL.Path, owner, err)
	}
	return true
}

// localModel resolves name to a servable model: the local cache, then the
// local disk, then — on a non-owner replica whose request is not itself a
// peer fetch — the owner's snapshot endpoint. A fetched model is installed
// locally (memory and disk) so the fetch happens once per replica, not per
// query.
func (s *server) localModel(r *http.Request, name string) (*service.Model, bool, error) {
	m, found, err := s.store.Get(name)
	if found || err != nil {
		return m, found, err
	}
	owner := s.owner(name)
	if owner == "" || owner == s.cfg.self || r.Header.Get(forwardedHeader) != "" {
		return nil, false, nil
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		owner+"/v1/models/"+name+"/snapshot", nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set(forwardedHeader, s.cfg.self)
	resp, err := s.peerc.Do(req)
	if err != nil {
		// The owner being down degrades to "not found here" rather than an
		// error: the model may genuinely not exist, and a 404 is actionable
		// (build it) where a 502 is not.
		return nil, false, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, nil
	}
	body := io.Reader(resp.Body)
	if s.cfg.maxBody > 0 {
		body = io.LimitReader(body, s.cfg.maxBody)
	}
	data, err := io.ReadAll(body)
	if err != nil {
		return nil, false, nil
	}
	m, err = service.DecodeModel(data)
	if err != nil {
		// A peer handing out undecodable snapshots is a server-side bug
		// worth surfacing, not a silent miss.
		return nil, true, err
	}
	if err := s.store.Put(name, m); err != nil {
		// A concurrent local build won the name; serve the fetched model
		// for this request and let the build's result take over after.
		return m, true, nil
	}
	return m, true, nil
}
