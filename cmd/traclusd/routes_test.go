package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRouteTable drives every method × path in the route table and pins
// the routing contract mechanically: every /v1 route is registered and
// answers JSON (never the mux's plain-text 404), every legacy alias
// serves with the Deprecation header and a Link naming its successor, and
// an unregistered method on a registered path is a 405 from the mux.
func TestRouteTable(t *testing.T) {
	s, ts := testServer(t, serverConfig{})

	fill := func(pattern string) string {
		p := strings.ReplaceAll(pattern, "{name}", "probe")
		return strings.ReplaceAll(p, "{id}", "job-0")
	}
	routes := s.routes()
	if len(routes) == 0 {
		t.Fatal("empty route table")
	}
	seen := map[string]bool{}
	for _, rt := range routes {
		key := rt.method + " " + rt.path
		if seen[key] {
			t.Errorf("duplicate route %s", key)
		}
		seen[key] = true
		if !strings.HasPrefix(rt.path, "/v1/") {
			t.Errorf("%s: primary pattern is not versioned", key)
		}
		if strings.HasPrefix(rt.legacy, "/v1/") {
			t.Errorf("%s: legacy alias %s is versioned", key, rt.legacy)
		}

		for _, probe := range []struct {
			path   string
			legacy bool
		}{{fill(rt.path), false}, {fill(rt.legacy), true}} {
			if probe.path == "" {
				continue
			}
			req := httptest.NewRequest(rt.method, probe.path, strings.NewReader(""))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code == http.StatusNotFound && rec.Header().Get("Content-Type") != "application/json" {
				t.Errorf("%s %s: not registered (plain-text 404)", rt.method, probe.path)
				continue
			}
			if got, want := rec.Header().Get("Deprecation"), ""; probe.legacy {
				want = "true"
				if link := rec.Header().Get("Link"); !strings.Contains(link, rt.path) ||
					!strings.Contains(link, `rel="successor-version"`) {
					t.Errorf("%s %s: Link = %q, want successor %s", rt.method, probe.path, link, rt.path)
				}
				if got != want {
					t.Errorf("%s %s: Deprecation = %q, want %q", rt.method, probe.path, got, want)
				}
			} else if got != "" {
				t.Errorf("%s %s: /v1 route answered with Deprecation header", rt.method, probe.path)
			}
		}

		// A method the table does not register on this path must be a 405
		// (or another registered route's answer) — never this handler.
		wrong := http.MethodPatch
		req := httptest.NewRequest(wrong, fill(rt.path), nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("PATCH %s = %d, want 405", fill(rt.path), rec.Code)
		}
	}
	_ = ts
}
