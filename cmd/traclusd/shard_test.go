package main

// Sharded-serving tests over a real in-process replica set: N httptest
// daemons wired into one consistent-hash ring. The servers need each
// other's URLs before they exist, so each listener starts on a swappable
// placeholder handler and the real servers are installed once every URL
// is known.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ring"
	"repro/internal/service"

	traclus "repro"
)

// swapHandler lets an httptest server start before its real handler is
// built.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (sh *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sh.mu.RLock()
	h := sh.h
	sh.mu.RUnlock()
	if h == nil {
		http.Error(w, "replica not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (sh *swapHandler) set(h http.Handler) {
	sh.mu.Lock()
	sh.h = h
	sh.mu.Unlock()
}

// replicaSet boots n sharded daemons that know each other, returning the
// servers, their base URLs, and a per-replica clustering-run counter.
func replicaSet(t *testing.T, n int) (servers []*server, urls []string, builds []*atomic.Int64) {
	t.Helper()
	swaps := make([]*swapHandler, n)
	for i := 0; i < n; i++ {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	builds = make([]*atomic.Int64, n)
	for i := 0; i < n; i++ {
		builds[i] = &atomic.Int64{}
		counter := builds[i]
		s, err := newServer(serverConfig{
			workers:   1,
			maxBuilds: 8,
			dataDir:   t.TempDir(),
			peers:     urls,
			self:      urls[i],
			buildModel: func(ctx context.Context, name string, trs []traclus.Trajectory, cfg traclus.Config, est *service.EstimateRange, progress func(string, float64)) (*service.Model, error) {
				counter.Add(1)
				return service.BuildCtx(ctx, name, trs, cfg, est, progress)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		swaps[i].set(s)
	}
	return servers, urls, builds
}

const shardParams = "eps=30&minlns=6&cost_advantage=15&min_seg_len=40"

// TestShardedBuildDedupe is the scale-out acceptance test: every replica
// receives a build request for the same model concurrently, and exactly
// one clustering run happens fleet-wide — on the owner.
func TestShardedBuildDedupe(t *testing.T) {
	const n = 3
	servers, urls, builds := replicaSet(t, n)
	_, csv := trainingCSV(t)
	const name = "shared-model"
	ownerURL := ring.New(urls, 0).Owner(name)
	ownerIdx := slices.Index(urls, ownerURL)
	if ownerIdx < 0 {
		t.Fatalf("owner %q not in replica set %v", ownerURL, urls)
	}

	jobs := make([]service.Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code := doJSON(t, http.MethodPost,
				urls[i]+"/models?name="+name+"&"+shardParams, csv, &jobs[i])
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("replica %d: POST = %d", i, code)
			}
		}(i)
	}
	wg.Wait()

	// Every job the fleet reported lives on the owner; poll it there.
	for i := range jobs {
		if jobs[i].ID == "" {
			continue // cache-hit response carries no job
		}
		if done := awaitJob(t, ownerURL, jobs[i].ID); done.State != service.JobDone {
			t.Fatalf("job %d finished as %s: %s", i, done.State, done.Error)
		}
	}
	var total int64
	for i, b := range builds {
		c := b.Load()
		total += c
		if i != ownerIdx && c != 0 {
			t.Errorf("non-owner replica %d ran %d clustering builds", i, c)
		}
	}
	if total != 1 {
		t.Fatalf("%d clustering runs across the fleet for %d duplicate requests, want exactly 1", total, n)
	}
	// The owner holds the model; the others served by proxy only.
	if _, ok, err := servers[ownerIdx].store.Get(name); err != nil || !ok {
		t.Errorf("owner does not hold the model it built (ok=%v err=%v)", ok, err)
	}
}

// TestShardedOwnerHeader pins that a build response from a non-owner
// names the owner replica, so clients know where the job lives.
func TestShardedOwnerHeader(t *testing.T) {
	_, urls, _ := replicaSet(t, 3)
	_, csv := trainingCSV(t)
	const name = "headed"
	ownerURL := ring.New(urls, 0).Owner(name)
	nonOwner := slices.IndexFunc(urls, func(u string) bool { return u != ownerURL })

	resp, err := http.Post(urls[nonOwner]+"/models?name="+name+"&"+shardParams,
		"text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(ownerHeader); got != ownerURL {
		t.Errorf("%s = %q, want owner %q", ownerHeader, got, ownerURL)
	}
}

// TestShardedClassifyFetchesSnapshot: a non-owner replica serves classify
// for a model built on the owner by fetching the snapshot once, caching
// it, and classifying locally — no clustering anywhere beyond the one
// owner-side build, and replicas agree bit-for-bit.
func TestShardedClassifyFetchesSnapshot(t *testing.T) {
	servers, urls, builds := replicaSet(t, 3)
	_, csv := trainingCSV(t)
	const name = "fetched"
	ownerURL := ring.New(urls, 0).Owner(name)
	ownerIdx := slices.Index(urls, ownerURL)
	nonOwner := (ownerIdx + 1) % len(urls)

	// Build via the owner directly.
	var job service.Job
	if code := doJSON(t, http.MethodPost,
		ownerURL+"/models?name="+name+"&"+shardParams, csv, &job); code != http.StatusAccepted {
		t.Fatalf("owner POST = %d", code)
	}
	if done := awaitJob(t, ownerURL, job.ID); done.State != service.JobDone {
		t.Fatalf("owner build failed: %s", done.Error)
	}
	servers[ownerIdx].store.Quiesce()

	// Classify on a non-owner: fetch-through, then local serving.
	var got struct {
		Results []service.Assignment `json:"results"`
	}
	if code := doJSON(t, http.MethodPost, urls[nonOwner]+"/v1/models/"+name+"/classify", csv, &got); code != http.StatusOK {
		t.Fatalf("non-owner classify = %d", code)
	}
	if len(got.Results) == 0 {
		t.Fatal("no classify results via non-owner")
	}
	if !slices.Contains(servers[nonOwner].store.Names(), name) {
		t.Error("non-owner did not cache the fetched model")
	}
	var total int64
	for _, b := range builds {
		total += b.Load()
	}
	if total != 1 {
		t.Fatalf("%d clustering runs after fetch-through, want 1", total)
	}

	// Second classify is local, and agrees with the owner's answers.
	var local, viaOwner struct {
		Results []service.Assignment `json:"results"`
	}
	if code := doJSON(t, http.MethodPost, urls[nonOwner]+"/v1/models/"+name+"/classify", csv, &local); code != http.StatusOK {
		t.Fatalf("second non-owner classify = %d", code)
	}
	if code := doJSON(t, http.MethodPost, ownerURL+"/v1/models/"+name+"/classify", csv, &viaOwner); code != http.StatusOK {
		t.Fatalf("owner classify = %d", code)
	}
	if len(local.Results) != len(viaOwner.Results) {
		t.Fatalf("replica result counts differ: %d vs %d", len(local.Results), len(viaOwner.Results))
	}
	for i := range viaOwner.Results {
		if local.Results[i] != viaOwner.Results[i] {
			t.Fatalf("result %d differs across replicas: %+v vs %+v", i, local.Results[i], viaOwner.Results[i])
		}
	}

	// A model nobody built 404s through the fetch path too (owner answers
	// the peer lookup with 404, not an error).
	if code := doJSON(t, http.MethodPost, urls[nonOwner]+"/v1/models/ghost/classify", csv, nil); code != http.StatusNotFound {
		t.Fatalf("classify of absent model via non-owner = %d, want 404", code)
	}
}
