package main

// Tests of the /v1 surface: the JSON BuildRequest (strict decode, no
// silent defaults), the typed error envelope, and snapshot export/import
// over HTTP including the rejection paths for corrupt, truncated, and
// future-version snapshots.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/service"
	"repro/internal/snapshot"
	"repro/internal/synth"

	traclus "repro"
)

func synthTraining() []traclus.Trajectory { return synth.CorridorScene(2, 10, 24, 4, 11) }

func buildCfg() traclus.Config {
	return traclus.Config{Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40}
}

// blockingBuildConfig injects a builder that parks until release closes,
// so tests can pin behaviour against a definitely-in-flight build.
func blockingBuildConfig(started, release chan struct{}) serverConfig {
	return serverConfig{
		maxBuilds: 4,
		buildModel: func(ctx context.Context, name string, trs []traclus.Trajectory, c traclus.Config, _ *service.EstimateRange, _ func(string, float64)) (*service.Model, error) {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return service.Build(name, trs, c)
		},
	}
}

// envelope mirrors apiError for decoding in tests.
type envelope struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details"`
	Legacy  string         `json:"error"`
}

func v1Build(t *testing.T, ts string, req BuildRequest) service.Job {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var job service.Job
	if code := doJSON(t, http.MethodPost, ts+"/v1/models", string(body), &job); code != http.StatusAccepted {
		t.Fatalf("POST /v1/models = %d", code)
	}
	if done := awaitJob(t, ts, job.ID); done.State != service.JobDone {
		t.Fatalf("v1 build finished as %s: %s", done.State, done.Error)
	}
	return job
}

func f64(v float64) *float64 { return &v }

// TestV1BuildClassify is the v1 end-to-end: JSON build request, /v1 job
// polling, summary, classify — all on versioned routes, no Deprecation
// headers anywhere.
func TestV1BuildClassify(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 2})
	_, csv := trainingCSV(t)

	v1Build(t, ts.URL, BuildRequest{
		Name: "v1model",
		Data: csv,
		Config: BuildConfig{
			Eps: f64(30), MinLns: f64(6),
			CostAdvantage: f64(15), MinSegmentLength: f64(40),
		},
	})
	var sum service.Summary
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models/v1model", "", &sum); code != http.StatusOK {
		t.Fatalf("GET /v1/models/v1model = %d", code)
	}
	if sum.Clusters != 2 {
		t.Fatalf("clusters = %d, want 2", sum.Clusters)
	}
	var classifyResp struct {
		Results []service.Assignment `json:"results"`
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/models/v1model/classify", csv, &classifyResp); code != http.StatusOK {
		t.Fatalf("POST /v1 classify = %d", code)
	}
	if len(classifyResp.Results) == 0 {
		t.Fatal("no classify results")
	}
	var list struct {
		Models []string `json:"models"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models", "", &list); code != http.StatusOK {
		t.Fatalf("GET /v1/models = %d", code)
	}
	if len(list.Models) != 1 || list.Models[0] != "v1model" {
		t.Fatalf("model list = %v", list.Models)
	}
}

// TestV1BuildValidation pins the strict-request contract: unknown fields,
// missing parameters (no silent defaults), and bad names all answer 400
// with the machine-readable envelope.
func TestV1BuildValidation(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	_, csv := trainingCSV(t)
	esc, _ := json.Marshal(csv)

	cases := []struct {
		name     string
		body     string
		wantCode string
	}{
		{"not json", "eps=30", codeInvalidRequest},
		{"unknown field", `{"name":"m","data":"x","epsilon":30}`, codeInvalidRequest},
		{"missing name", fmt.Sprintf(`{"data":%s,"config":{"eps":30,"min_lns":6}}`, esc), codeInvalidRequest},
		{"bad name", fmt.Sprintf(`{"name":"../etc","data":%s,"config":{"eps":30,"min_lns":6}}`, esc), codeInvalidRequest},
		{"no eps (silent default refused)", fmt.Sprintf(`{"name":"m","data":%s,"config":{"min_lns":6}}`, esc), codeInvalidRequest},
		{"no min_lns", fmt.Sprintf(`{"name":"m","data":%s,"config":{"eps":30}}`, esc), codeInvalidRequest},
		{"empty config", fmt.Sprintf(`{"name":"m","data":%s}`, esc), codeInvalidRequest},
		{"negative eps", fmt.Sprintf(`{"name":"m","data":%s,"config":{"eps":-1,"min_lns":6}}`, esc), codeInvalidConfig},
		{"unknown index", fmt.Sprintf(`{"name":"m","data":%s,"config":{"eps":30,"min_lns":6,"index":"kdtree"}}`, esc), codeInvalidConfig},
		{"bad format", fmt.Sprintf(`{"name":"m","data":%s,"format":"parquet","config":{"eps":30,"min_lns":6}}`, esc), codeInvalidRequest},
		{"empty data", `{"name":"m","data":"","config":{"eps":30,"min_lns":6}}`, codeInvalidRequest},
		{"explicit zero auto lo", fmt.Sprintf(`{"name":"m","data":%s,"config":{"auto":{"lo":0,"hi":50}}}`, esc), codeInvalidRequest},
	}
	for _, tc := range cases {
		var e envelope
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/models", tc.body, &e)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
			continue
		}
		if e.Code != tc.wantCode {
			t.Errorf("%s: code = %q, want %q (message %q)", tc.name, e.Code, tc.wantCode, e.Message)
		}
		if e.Legacy != e.Message || e.Message == "" {
			t.Errorf("%s: legacy error field %q does not mirror message %q", tc.name, e.Legacy, e.Message)
		}
	}

	// The invalid_config envelope carries structured details.
	var e envelope
	doJSON(t, http.MethodPost, ts.URL+"/v1/models",
		fmt.Sprintf(`{"name":"m","data":%s,"config":{"eps":-1,"min_lns":6}}`, esc), &e)
	if e.Details["field"] != "Eps" {
		t.Errorf("invalid_config details = %v, want field Eps", e.Details)
	}
}

// TestV1AutoEstimation: the consolidated auto object with presence
// semantics — absent bounds derive from the extent, explicit bounds
// survive.
func TestV1AutoEstimation(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	_, csv := trainingCSV(t)
	v1Build(t, ts.URL, BuildRequest{
		Name: "auto",
		Data: csv,
		Config: BuildConfig{
			Auto:          &AutoRange{Lo: f64(5), Hi: f64(60)},
			CostAdvantage: f64(15), MinSegmentLength: f64(40),
		},
	})
	var sum service.Summary
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models/auto", "", &sum); code != http.StatusOK {
		t.Fatalf("GET auto model = %d", code)
	}
	if !(sum.Eps >= 5 && sum.Eps <= 60) {
		t.Errorf("estimated eps %v outside requested [5, 60]", sum.Eps)
	}
}

// TestV1ErrorEnvelopeStatuses pins the code ↔ status map on live
// endpoints: 404 not_found, 413 too_large, 429 too_many_builds.
func TestV1ErrorEnvelopeStatuses(t *testing.T) {
	_, ts := testServer(t, serverConfig{maxBody: 64})
	var e envelope
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models/ghost", "", &e); code != http.StatusNotFound || e.Code != codeNotFound {
		t.Errorf("missing model: %d %q, want 404 not_found", code, e.Code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/job-999", "", &e); code != http.StatusNotFound || e.Code != codeNotFound {
		t.Errorf("missing job: %d %q, want 404 not_found", code, e.Code)
	}
	big := strings.Repeat("x", 1024)
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/models", big, &e); code != http.StatusRequestEntityTooLarge || e.Code != codeTooLarge {
		t.Errorf("oversize body: %d %q, want 413 too_large", code, e.Code)
	}
}

// TestV1SnapshotExportImport is the HTTP snapshot round trip: export a
// built model, delete it, import the bytes back (under a new name too),
// and classify identically.
func TestV1SnapshotExportImport(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 1})
	_, csv := trainingCSV(t)
	v1Build(t, ts.URL, BuildRequest{
		Name: "exportee",
		Data: csv,
		Config: BuildConfig{Eps: f64(30), MinLns: f64(6),
			CostAdvantage: f64(15), MinSegmentLength: f64(40)},
	})

	resp, err := http.Get(ts.URL + "/v1/models/exportee/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("export = %d, %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "vnd.traclus.snapshot") {
		t.Errorf("export Content-Type = %q", ct)
	}
	if _, err := snapshot.Decode(data); err != nil {
		t.Fatalf("exported bytes do not decode: %v", err)
	}

	// Import under a different name; the path decides identity.
	putReq, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/clone/snapshot", bytes.NewReader(data))
	putResp, err := http.DefaultClient.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusOK {
		t.Fatalf("import = %d", putResp.StatusCode)
	}
	var orig, clone struct {
		Results []service.Assignment `json:"results"`
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/models/exportee/classify", csv, &orig); code != http.StatusOK {
		t.Fatalf("classify original = %d", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/models/clone/classify", csv, &clone); code != http.StatusOK {
		t.Fatalf("classify clone = %d", code)
	}
	for i := range orig.Results {
		if orig.Results[i] != clone.Results[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, orig.Results[i], clone.Results[i])
		}
	}
}

// TestV1SnapshotRejections pins the typed 422s: corrupt bytes, a truncated
// snapshot, and a future format version are each rejected with their code
// — and the daemon stays alive.
func TestV1SnapshotRejections(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 1})
	_, csv := trainingCSV(t)
	v1Build(t, ts.URL, BuildRequest{
		Name: "donor",
		Data: csv,
		Config: BuildConfig{Eps: f64(30), MinLns: f64(6),
			CostAdvantage: f64(15), MinSegmentLength: f64(40)},
	})
	resp, err := http.Get(ts.URL + "/v1/models/donor/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	valid, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	put := func(name string, body []byte) (int, envelope) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/"+name+"/snapshot", bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e envelope
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e
	}

	corrupt := bytes.Clone(valid)
	corrupt[len(corrupt)-1] ^= 0x40
	if code, e := put("c1", corrupt); code != http.StatusUnprocessableEntity || e.Code != codeInvalidSnapshot {
		t.Errorf("corrupt import = %d %q, want 422 invalid_snapshot", code, e.Code)
	}
	if code, e := put("c2", valid[:len(valid)/3]); code != http.StatusUnprocessableEntity || e.Code != codeInvalidSnapshot {
		t.Errorf("truncated import = %d %q, want 422 invalid_snapshot", code, e.Code)
	}
	future := bytes.Clone(valid)
	future[8], future[9] = 0xEE, 0xFF // format version little-endian
	if code, e := put("c3", future); code != http.StatusUnprocessableEntity || e.Code != codeSnapshotVersion {
		t.Errorf("future-version import = %d %q, want 422 %s", code, e.Code, codeSnapshotVersion)
	} else if e.Details["supported"] == nil {
		t.Errorf("version envelope has no supported detail: %v", e.Details)
	}
	if code, _ := put(".hidden", valid); code != http.StatusBadRequest {
		t.Errorf("bad import name = %d, want 400", code)
	}
	// The daemon still serves after every rejection.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", "", nil); code != http.StatusOK {
		t.Fatalf("healthz after rejections = %d", code)
	}
}

// TestV1SnapshotPutConflict: importing over a name whose build is in
// flight answers 409 conflict.
func TestV1SnapshotPutConflict(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	_, ts := testServer(t, blockingBuildConfig(started, release))
	_, csv := trainingCSV(t)

	var job service.Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/models?name=busy&eps=30&minlns=6", csv, &job); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	<-started

	// A valid snapshot from a second server: build one synchronously.
	m, err := service.Build("busy", synthTraining(), buildCfg())
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/busy/snapshot", bytes.NewReader(data))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var e envelope
	_ = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || e.Code != codeConflict {
		t.Fatalf("import over in-flight build = %d %q, want 409 conflict", resp.StatusCode, e.Code)
	}
	close(release)
	awaitJob(t, ts.URL, job.ID)
}
