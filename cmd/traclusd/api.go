package main

// The /v1 error contract: every failure answers the one JSON envelope
//
//	{"code": "<machine-readable>", "message": "<human text>", "details": {...}}
//
// plus the legacy "error" field (same text as message) so pre-/v1 clients
// keep decoding responses on the alias routes. Codes map to statuses:
//
//	invalid_request   400  malformed parameters or body
//	invalid_config    400  typed TRACLUS config validation failure
//	not_found         404  unknown model or job
//	conflict          409  snapshot import raced an in-flight build
//	too_large         413  body, point, or trajectory cap exceeded
//	conflict          409  also: append on a snapshot-loaded model with no
//	                       training geometry (rebuild to append)
//	invalid_snapshot  422  corrupt/truncated/semantically invalid snapshot
//	unsupported_snapshot_version 422  snapshot from a future format version
//	no_dendrogram     422  sweep query on a model without a merge structure
//	                       (loaded from a format v1 snapshot)
//	geometry_mismatch 422  append data incompatible with the model's
//	                       geometry or build configuration
//	too_many_builds   429  build concurrency cap reached
//	peer_unreachable  502  the owning replica could not be reached
//	timeout           504  classification deadline expired with no results

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"

	"repro/internal/service"
	"repro/internal/snapshot"
	"repro/internal/trackio"

	traclus "repro"
)

const (
	codeInvalidRequest  = "invalid_request"
	codeInvalidConfig   = "invalid_config"
	codeNotFound        = "not_found"
	codeConflict        = "conflict"
	codeTooLarge        = "too_large"
	codeInvalidSnapshot = "invalid_snapshot"
	codeSnapshotVersion = "unsupported_snapshot_version"
	codeNoDendrogram    = "no_dendrogram"
	codeGeometryBad     = "geometry_mismatch"
	codeTooManyBuilds   = "too_many_builds"
	codePeerUnreachable = "peer_unreachable"
	codeTimeout         = "timeout"
)

// apiError is the wire envelope. Legacy mirrors Message under the old
// "error" key.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Details any    `json:"details,omitempty"`
	Legacy  string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("traclusd: encoding response: %v", err)
	}
}

func writeErrorCode(w http.ResponseWriter, status int, code, msg string, details any) {
	writeJSON(w, status, apiError{Code: code, Message: msg, Details: details, Legacy: msg})
}

// writeError is the generic-code shorthand for call sites with a status
// but no richer classification.
func writeError(w http.ResponseWriter, status int, msg string) {
	code := codeInvalidRequest
	switch status {
	case http.StatusNotFound:
		code = codeNotFound
	case http.StatusRequestEntityTooLarge:
		code = codeTooLarge
	case http.StatusTooManyRequests:
		code = codeTooManyBuilds
	case http.StatusGatewayTimeout:
		code = codeTimeout
	}
	writeErrorCode(w, status, code, msg, nil)
}

// writeTypedError maps a typed error from the service, trackio, or
// snapshot layers to its envelope: status, machine code, and structured
// details all derive from the error's type, in one audited place.
func writeTypedError(w http.ResponseWriter, err error) {
	var cfgErr *traclus.ConfigError
	var limitErr *trackio.LimitError
	var maxErr *http.MaxBytesError
	var corruptErr *snapshot.CorruptError
	var versionErr *snapshot.VersionError
	var invalidErr *snapshot.InvalidError
	switch {
	case errors.As(err, &cfgErr):
		// The offending value is stringified: NaN/±Inf are exactly the
		// values that land here, and encoding/json cannot represent them.
		writeErrorCode(w, http.StatusBadRequest, codeInvalidConfig, err.Error(), map[string]any{
			"field": cfgErr.Field, "value": fmt.Sprint(cfgErr.Value), "reason": cfgErr.Reason,
		})
	case errors.As(err, &limitErr):
		writeErrorCode(w, http.StatusRequestEntityTooLarge, codeTooLarge, err.Error(), map[string]any{
			"what": limitErr.What, "limit": limitErr.Limit,
		})
	case errors.As(err, &maxErr):
		writeErrorCode(w, http.StatusRequestEntityTooLarge, codeTooLarge, err.Error(), map[string]any{
			"what": "bytes", "limit": maxErr.Limit,
		})
	case errors.As(err, &corruptErr):
		writeErrorCode(w, http.StatusUnprocessableEntity, codeInvalidSnapshot, err.Error(), map[string]any{
			"offset": corruptErr.Offset, "reason": corruptErr.Reason,
		})
	case errors.As(err, &versionErr):
		writeErrorCode(w, http.StatusUnprocessableEntity, codeSnapshotVersion, err.Error(), map[string]any{
			"got": versionErr.Got, "supported": versionErr.Supported,
		})
	case errors.As(err, &invalidErr):
		writeErrorCode(w, http.StatusUnprocessableEntity, codeInvalidSnapshot, err.Error(), map[string]any{
			"field": invalidErr.Field, "reason": invalidErr.Reason,
		})
	case errors.Is(err, service.ErrNoDendrogram):
		writeErrorCode(w, http.StatusUnprocessableEntity, codeNoDendrogram, err.Error(), nil)
	case errors.Is(err, service.ErrBuildInFlight):
		writeErrorCode(w, http.StatusConflict, codeConflict, err.Error(), nil)
	case errors.Is(err, service.ErrNotAppendable):
		// The model exists but was restored from a snapshot: its training
		// geometry is gone, so the append conflicts with the model's state
		// rather than being malformed.
		writeErrorCode(w, http.StatusConflict, codeConflict, err.Error(), nil)
	default:
		writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest, err.Error(), nil)
	}
}

// writeBodyError maps body-read failures to status codes: size-cap hits
// (byte, point, or trajectory) are 413 via their typed errors, everything
// else (parse errors) 400.
func writeBodyError(w http.ResponseWriter, err error) {
	writeTypedError(w, err)
}
