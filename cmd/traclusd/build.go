package main

// Model building, twice over the same core: the /v1 interface takes one
// validated JSON BuildRequest body (data inline, config consolidated, no
// silent defaults), the legacy alias keeps the query-parameter + raw-body
// interface with its historical eps=30/minlns=6 defaults. Both funnel into
// startBuild, which owns the cache check, ownership forwarding, the build
// semaphore, and the single-flight job start.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"

	"repro/internal/service"
	"repro/internal/trackio"

	traclus "repro"
)

// BuildRequest is the /v1 build body. Pointer fields are presence-tested:
// v1 refuses to invent clustering parameters, so eps and min_lns are
// required unless auto estimation is requested — a request that omits them
// is answered 400, never built with defaults the client did not choose.
type BuildRequest struct {
	// Name identifies the model; required, and the shard key in a replica
	// set.
	Name string `json:"name"`
	// Format names the trajectory encoding of Data: csv (default),
	// besttrack, or telemetry.
	Format string `json:"format,omitempty"`
	// Species filters multi-species formats (telemetry).
	Species string `json:"species,omitempty"`
	// Data is the trajectory payload itself, inline in the named format.
	Data string `json:"data"`
	// Config carries every clustering parameter; required unless Auto is
	// set inside it.
	Config BuildConfig `json:"config"`
}

// BuildConfig consolidates the legacy query parameters (eps, minlns,
// mintrajs, undirected, cost_advantage, min_seg_len, gamma, index,
// workers, auto, auto_lo, auto_hi, geometry, wt) into one JSON object.
type BuildConfig struct {
	Eps              *float64   `json:"eps,omitempty"`
	MinLns           *float64   `json:"min_lns,omitempty"`
	MinTrajs         *int       `json:"min_trajs,omitempty"`
	Undirected       *bool      `json:"undirected,omitempty"`
	CostAdvantage    *float64   `json:"cost_advantage,omitempty"`
	MinSegmentLength *float64   `json:"min_seg_len,omitempty"`
	Gamma            *float64   `json:"gamma,omitempty"`
	Index            string     `json:"index,omitempty"`
	Workers          *int       `json:"workers,omitempty"`
	Auto             *AutoRange `json:"auto,omitempty"`
	// Geometry selects the segment geometry: planar (default),
	// spatiotemporal (data must carry the CSV timestamp column), or
	// geodesic (x=longitude, y=latitude in degrees).
	Geometry string `json:"geometry,omitempty"`
	// TemporalWeight is the spatiotemporal wT; setting it requires
	// geometry "spatiotemporal".
	TemporalWeight *float64 `json:"wt,omitempty"`
}

// AutoRange requests §4.4 entropy estimation of eps/min_lns over [Lo, Hi].
// Absent bounds derive from the data extent; an explicit 0 is a bound
// violation, not a request for the default — presence decides, not the
// zero value.
type AutoRange struct {
	Lo *float64 `json:"lo,omitempty"`
	Hi *float64 `json:"hi,omitempty"`
}

// buildSpec is the normalized outcome of either build interface.
type buildSpec struct {
	name    string
	cfg     traclus.Config
	est     *service.EstimateRange
	loSet   bool // est.Lo was explicit (not extent-derived)
	hiSet   bool
	format  trackio.Format
	species string
	data    []byte
}

// handleBuildV1 is POST /v1/models: one JSON body, strictly decoded.
func (s *server) handleBuildV1(w http.ResponseWriter, r *http.Request) {
	raw, err := s.readRaw(w, r)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	var req BuildRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest, "decoding BuildRequest: "+err.Error(), nil)
		return
	}
	if !service.ValidModelName(req.Name) {
		writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest,
			"model name must match "+service.ModelNamePattern(), map[string]any{"field": "name"})
		return
	}
	if s.forwardToOwner(w, r, req.Name, raw) {
		return
	}
	spec := buildSpec{name: req.Name, species: req.Species, data: []byte(req.Data), format: trackio.FormatCSV}
	if req.Format != "" {
		if spec.format, err = trackio.ParseFormat(req.Format); err != nil {
			writeTypedError(w, err)
			return
		}
	}
	c := req.Config
	if c.Auto != nil {
		spec.est = &service.EstimateRange{}
		if c.Auto.Lo != nil {
			spec.est.Lo, spec.loSet = *c.Auto.Lo, true
		}
		if c.Auto.Hi != nil {
			spec.est.Hi, spec.hiSet = *c.Auto.Hi, true
		}
	} else {
		// No silent defaults in v1: the two parameters that define the
		// clustering must be explicit when not estimated.
		if c.Eps == nil || c.MinLns == nil {
			writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest,
				"config.eps and config.min_lns are required unless config.auto is set", map[string]any{"field": "config"})
			return
		}
	}
	setIf := func(dst *float64, src *float64) {
		if src != nil {
			*dst = *src
		}
	}
	setIf(&spec.cfg.Eps, c.Eps)
	setIf(&spec.cfg.MinLns, c.MinLns)
	setIf(&spec.cfg.CostAdvantage, c.CostAdvantage)
	setIf(&spec.cfg.MinSegmentLength, c.MinSegmentLength)
	setIf(&spec.cfg.Gamma, c.Gamma)
	if c.MinTrajs != nil {
		spec.cfg.MinTrajs = *c.MinTrajs
	}
	if c.Undirected != nil {
		spec.cfg.Undirected = *c.Undirected
	}
	if c.Workers != nil {
		spec.cfg.Workers = *c.Workers
	} else {
		spec.cfg.Workers = s.cfg.workers
	}
	if c.Index != "" {
		kind, err := traclus.ParseIndexKind(c.Index)
		if err != nil {
			writeTypedError(w, err)
			return
		}
		spec.cfg.Index = kind
	}
	geo, err := parseGeometryParams(c.Geometry, c.TemporalWeight)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	spec.cfg.Geometry = geo
	s.startBuild(w, r, spec)
}

// parseGeometryParams resolves the geometry/wt pair shared by both build
// interfaces. Unknown geometry names and a wt on a non-spatiotemporal
// geometry surface as typed *ConfigError (the invalid_config envelope).
func parseGeometryParams(name string, wt *float64) (traclus.Geometry, error) {
	geo, err := traclus.ParseGeometry(name)
	if err != nil {
		return traclus.Geometry{}, err
	}
	if wt != nil {
		if !geo.Timed() {
			return traclus.Geometry{}, &traclus.ConfigError{
				Field: "Geometry", Value: name,
				Reason: `wt is the spatiotemporal weight; set geometry to "spatiotemporal"`,
			}
		}
		geo.WT = *wt
	}
	return geo, nil
}

// handleBuildLegacy is POST /models, the deprecated interface: parameters
// in the query string (with the historical eps=30/minlns=6 defaults), raw
// trajectory data as the body.
func (s *server) handleBuildLegacy(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if !service.ValidModelName(name) {
		writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest,
			"model name must match "+service.ModelNamePattern(), map[string]any{"field": "name"})
		return
	}
	cfg, est, loSet, hiSet, err := buildConfigFromQuery(r)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	cfg.Workers = s.cfg.workers
	format := trackio.FormatCSV
	if f := r.URL.Query().Get("format"); f != "" {
		if format, err = trackio.ParseFormat(f); err != nil {
			writeTypedError(w, err)
			return
		}
	}
	raw, err := s.readRaw(w, r)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	if s.forwardToOwner(w, r, name, raw) {
		return
	}
	s.startBuild(w, r, buildSpec{
		name: name, cfg: cfg, est: est, loSet: loSet, hiSet: hiSet,
		format: format, species: r.URL.Query().Get("species"), data: raw,
	})
}

// startBuild is the shared build core: cache check, config validation,
// data parse, estimation-bound resolution, build-slot acquisition, and the
// async single-flight job start. The caller has already resolved ownership
// (forwarding happens on the raw request).
func (s *server) startBuild(w http.ResponseWriter, r *http.Request, spec buildSpec) {
	// A name already resident — in memory or as a disk snapshot — is
	// answered explicitly instead of silently dropping the new upload: the
	// client learns the model was served from cache and must DELETE first
	// (which also removes the snapshot file) to rebuild with new data or
	// parameters. A snapshot that exists but fails to decode is not a hit:
	// the fresh build below will overwrite it.
	if _, ok, err := s.store.Get(spec.name); err == nil && ok {
		writeJSON(w, http.StatusOK, map[string]any{
			"model":  spec.name,
			"state":  service.JobDone,
			"cached": true,
		})
		return
	}
	if spec.est == nil {
		if err := spec.cfg.Validate(); err != nil {
			writeTypedError(w, err)
			return
		}
	} else if err := spec.cfg.ValidateForEstimation(); err != nil {
		// Eps/MinLns are what auto estimation finds; everything else must
		// still be well-formed.
		writeTypedError(w, err)
		return
	}
	// A spatiotemporal geometry switches the whole ingestion path: the
	// upload must be CSV with the timestamp column, and the build runs
	// through the timed pipeline. Every other geometry takes the spatial
	// path (geodesic projection happens inside the pipeline).
	timed := spec.cfg.Geometry.Timed()
	var trs []traclus.Trajectory
	var ttrs []traclus.TimedTrajectory
	var err error
	if timed {
		if spec.format != trackio.FormatCSV {
			writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest,
				fmt.Sprintf("format %q has no timestamp column; spatiotemporal builds take csv with traj_id,x,y,t rows", spec.format), nil)
			return
		}
		if ttrs, err = s.parseTimedTrajectories(spec.data); err != nil {
			writeBodyError(w, err)
			return
		}
		// Structural problems (non-monotone timestamps) must answer 400
		// synchronously, not fail the async job.
		for _, tr := range ttrs {
			if err := tr.Validate(); err != nil {
				writeBodyError(w, err)
				return
			}
		}
		trs = make([]traclus.Trajectory, len(ttrs))
		for i, tr := range ttrs {
			trs[i] = tr.Spatial() // estimation extent + emptiness check below
		}
	} else if trs, err = s.parseTrajectories(spec.data, spec.format, spec.species); err != nil {
		writeBodyError(w, err)
		return
	}
	if len(trs) == 0 {
		writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest, "no trajectories in request body", nil)
		return
	}
	if spec.est != nil {
		// Absent bounds derive from the data extent (the CLI's -auto rule),
		// each side independently so an explicit single bound survives. The
		// combined interval is then validated here, synchronously — bad
		// bounds must answer 400, not a failed async job.
		defLo, defHi := traclus.DefaultEstimationRange(trs)
		if !spec.loSet {
			spec.est.Lo = defLo
		}
		if !spec.hiSet {
			spec.est.Hi = defHi
		}
		if !(spec.est.Lo > 0) || !(spec.est.Hi > spec.est.Lo) {
			writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest,
				fmt.Sprintf("auto estimation bounds must satisfy 0 < lo < hi, got [%v, %v]", spec.est.Lo, spec.est.Hi),
				map[string]any{"lo": fmt.Sprint(spec.est.Lo), "hi": fmt.Sprint(spec.est.Hi)})
			return
		}
	}
	// Only requests that may start a fresh clustering run consume a build
	// slot and retain their upload; a request for a name already in flight
	// joins that build instead — its job merely waits on the shared outcome
	// (Store.Wait), so it neither 429s unrelated builds nor parks its
	// parsed body for the build's duration. The Pending check is advisory:
	// a race can let same-name duplicates each take a slot (the semaphore
	// tolerates the over-count; single-flight still runs one build), or
	// land a join on a build that just failed, which reports a retryable
	// job failure.
	name, cfg, est := spec.name, spec.cfg, spec.est
	build := func(ctx context.Context, update func(phase string, fraction float64)) (*service.Model, error) {
		if timed {
			return s.cfg.buildTimedModel(ctx, name, ttrs, cfg, est, update)
		}
		return s.cfg.buildModel(ctx, name, trs, cfg, est, update)
	}
	joins := s.store.Pending(name)
	var startJob func(ctx context.Context, update func(phase string, fraction float64)) (string, error)
	if joins {
		startJob = func(ctx context.Context, _ func(string, float64)) (string, error) {
			// The joiner waits under its own job context, so cancelling it
			// (or DELETE on the model) releases this waiter even though the
			// shared build belongs to another job.
			_, found, err := s.store.WaitCtx(ctx, name)
			if err != nil {
				return "", err
			}
			if !found {
				return "", fmt.Errorf("concurrent build of %q failed and was dropped; retry", name)
			}
			return "deduplicated into a concurrent build of this model; this request's upload was not used", nil
		}
	} else {
		select {
		case s.buildSem <- struct{}{}:
		default:
			writeErrorCode(w, http.StatusTooManyRequests, codeTooManyBuilds,
				fmt.Sprintf("too many builds in flight (max %d); retry after a job finishes", s.cfg.maxBuilds),
				map[string]any{"max_builds": s.cfg.maxBuilds})
			return
		}
		startJob = func(ctx context.Context, update func(phase string, fraction float64)) (string, error) {
			defer func() { <-s.buildSem }()
			_, built, _, err := s.store.GetOrBuild(name, func() (*service.Model, error) {
				return build(ctx, update)
			})
			if err == nil && !built {
				return "deduplicated into a concurrent build of this model; this request's upload was not used", nil
			}
			return "", err
		}
	}
	writeJSON(w, http.StatusAccepted, s.jobs.Start(s.cfg.baseCtx, name, startJob))
}

// readRaw reads the full request body under the configured byte cap; an
// oversized body surfaces the typed *http.MaxBytesError (413).
func (s *server) readRaw(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body := r.Body
	if s.cfg.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.maxBody)
	}
	return io.ReadAll(body)
}

// parseTrajectories decodes trajectory data in the given format under the
// per-upload caps. CSV goes through the streaming decoder so hostile
// inputs are bounded before they are materialised.
func (s *server) parseTrajectories(data []byte, format trackio.Format, species string) ([]traclus.Trajectory, error) {
	if format == trackio.FormatCSV {
		d := trackio.NewCSVDecoder(bytes.NewReader(data))
		d.MaxPoints = s.cfg.maxPoints
		d.MaxTrajectories = s.cfg.maxTrajectories
		trs, err := d.DecodeAllCSV()
		if err != nil {
			return nil, err
		}
		// Merge non-contiguous runs of one id so the daemon parses CSV
		// exactly like the CLI's ReadCSV, interleaved ids included.
		return trackio.MergeByID(trs), nil
	}
	trs, err := trackio.Read(bytes.NewReader(data), format, species)
	if err != nil {
		return nil, err
	}
	// These formats have no streaming decoder yet; enforce the same
	// per-upload caps post-parse so they are never silently wider than the
	// CSV path.
	if err := checkUploadLimits(trs, s.cfg.maxPoints, s.cfg.maxTrajectories); err != nil {
		return nil, err
	}
	return trs, nil
}

// parseTimedTrajectories decodes "traj_id,x,y,t" CSV under the same
// per-upload caps as the spatial path — the LimitError/413 contract is
// column-count independent.
func (s *server) parseTimedTrajectories(data []byte) ([]traclus.TimedTrajectory, error) {
	d := trackio.NewCSVDecoder(bytes.NewReader(data))
	d.MaxPoints = s.cfg.maxPoints
	d.MaxTrajectories = s.cfg.maxTrajectories
	trs, err := d.DecodeAllTimedCSV()
	if err != nil {
		return nil, err
	}
	return trackio.MergeTimedByID(trs), nil
}

// checkUploadLimits applies the points/trajectories caps to an already
// parsed upload, mirroring the CSVDecoder's streaming enforcement.
func checkUploadLimits(trs []traclus.Trajectory, maxPoints, maxTrajs int) error {
	if maxTrajs > 0 && len(trs) > maxTrajs {
		return &trackio.LimitError{What: "trajectories", Limit: maxTrajs}
	}
	if maxPoints > 0 {
		total := 0
		for _, tr := range trs {
			total += len(tr.Points)
		}
		if total > maxPoints {
			return &trackio.LimitError{What: "points", Limit: maxPoints}
		}
	}
	return nil
}

// buildConfigFromQuery parses the legacy query-parameter interface,
// keeping its historical defaults (eps=30, minlns=6). loSet/hiSet report
// whether the auto bounds were explicit — presence decides defaulting.
func buildConfigFromQuery(r *http.Request) (cfg traclus.Config, est *service.EstimateRange, loSet, hiSet bool, err error) {
	cfg = traclus.Config{Eps: 30, MinLns: 6}
	q := r.URL.Query()
	if v := q.Get("auto"); v != "" {
		b, perr := strconv.ParseBool(v)
		if perr != nil {
			return cfg, nil, false, false, fmt.Errorf("bad auto %q", v)
		}
		if b {
			est = &service.EstimateRange{}
		}
	}
	floats := map[string]*float64{
		"eps":            &cfg.Eps,
		"minlns":         &cfg.MinLns,
		"cost_advantage": &cfg.CostAdvantage,
		"min_seg_len":    &cfg.MinSegmentLength,
		"gamma":          &cfg.Gamma,
	}
	if est != nil {
		floats["auto_lo"], floats["auto_hi"] = &est.Lo, &est.Hi
	}
	for key, dst := range floats {
		v := q.Get(key)
		if v == "" {
			continue
		}
		f, perr := strconv.ParseFloat(v, 64)
		if perr != nil {
			return cfg, nil, false, false, fmt.Errorf("bad %s %q", key, v)
		}
		*dst = f
	}
	if est != nil {
		loSet = q.Get("auto_lo") != ""
		hiSet = q.Get("auto_hi") != ""
	}
	if v := q.Get("mintrajs"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil {
			return cfg, nil, false, false, fmt.Errorf("bad mintrajs %q", v)
		}
		cfg.MinTrajs = n
	}
	if v := q.Get("undirected"); v != "" {
		b, perr := strconv.ParseBool(v)
		if perr != nil {
			return cfg, nil, false, false, fmt.Errorf("bad undirected %q", v)
		}
		cfg.Undirected = b
	}
	if v := q.Get("index"); v != "" {
		// Unknown backend names surface the typed *ConfigError as a 400.
		kind, perr := traclus.ParseIndexKind(v)
		if perr != nil {
			return cfg, nil, false, false, perr
		}
		cfg.Index = kind
	}
	var wt *float64
	if v := q.Get("wt"); v != "" {
		f, perr := strconv.ParseFloat(v, 64)
		if perr != nil {
			return cfg, nil, false, false, fmt.Errorf("bad wt %q", v)
		}
		wt = &f
	}
	geo, perr := parseGeometryParams(q.Get("geometry"), wt)
	if perr != nil {
		return cfg, nil, false, false, perr
	}
	cfg.Geometry = geo
	return cfg, est, loSet, hiSet, nil
}

// handleClassify classifies uploaded trajectories against the named model.
// In sharded mode a local miss fetches the owner's snapshot once and
// caches it; classification itself always runs locally.
func (s *server) handleClassify(w http.ResponseWriter, r *http.Request) {
	m, found, err := s.localModel(r, r.PathValue("name"))
	if err != nil {
		writeTypedError(w, err)
		return
	}
	if !found {
		writeErrorCode(w, http.StatusNotFound, codeNotFound, "model not found", nil)
		return
	}
	raw, err := s.readRaw(w, r)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	// A spatiotemporal model classifies timed queries: the upload must
	// carry the timestamp column so the temporal distance component has a
	// query interval to gap against the cluster windows.
	timed := m.Summary().Geometry == "spatiotemporal"
	var trs []traclus.Trajectory
	var ttrs []traclus.TimedTrajectory
	if timed {
		ttrs, err = s.parseTimedTrajectories(raw)
	} else {
		trs, err = s.parseTrajectories(raw, trackio.FormatCSV, "")
	}
	if err != nil {
		writeBodyError(w, err)
		return
	}
	if len(trs) == 0 && len(ttrs) == 0 {
		writeErrorCode(w, http.StatusBadRequest, codeInvalidRequest, "no trajectories in request body", nil)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.classifyTimeout)
	defer cancel()
	var results []service.Assignment
	if timed {
		results = m.ClassifyTimedBatch(ctx, ttrs, s.cfg.workers)
	} else {
		results = m.ClassifyBatch(ctx, trs, s.cfg.workers)
	}
	if err := r.Context().Err(); err != nil {
		// Cancellation and deadline map differently: a vanished client is a
		// 499-style abandonment (no response can reach anyone — log it so
		// operators can tell dropped clients from slow models), while our
		// own classify deadline falls through to the 504/partial logic.
		if errors.Is(err, context.Canceled) {
			log.Printf("traclusd: %s %s: client disconnected before response (499): %v", r.Method, r.URL.Path, err)
			return
		}
		log.Printf("traclusd: %s %s: request context ended: %v", r.Method, r.URL.Path, err)
		return
	}
	// On deadline expiry, completed assignments are still returned (the
	// stragglers carry the context error per item); a batch where nothing
	// completed is a plain timeout.
	timedOut := errors.Is(ctx.Err(), context.DeadlineExceeded)
	if timedOut {
		done := 0
		for _, a := range results {
			if a.Err == "" {
				done++
			}
		}
		if done == 0 {
			writeErrorCode(w, http.StatusGatewayTimeout, codeTimeout, "classification timed out", nil)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model":     m.Name(),
		"results":   results,
		"timed_out": timedOut,
	})
}
