package main

// The geometry layer over HTTP: a spatiotemporal model builds from timed
// CSV, snapshots, restores under a new name, and classifies identically —
// the acceptance path for the pluggable-geometry PR — plus the typed 400s
// for bad geometry parameters on both build interfaces.

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/trackio"
)

func timedTrainingCSV(t *testing.T) string {
	t.Helper()
	trs := synth.TimedCorridorScene(2, 10, 24, 4, 11, 60, 10)
	var buf bytes.Buffer
	if err := trackio.WriteTimedCSV(&buf, trs); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestV1SpatiotemporalEndToEnd: build (geometry=spatiotemporal, wt) from
// timed CSV, read the summary, export the snapshot, import it under a new
// name, and verify the clone classifies timed probes bit-identically.
func TestV1SpatiotemporalEndToEnd(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 2})
	csv := timedTrainingCSV(t)

	v1Build(t, ts.URL, BuildRequest{
		Name: "st",
		Data: csv,
		Config: BuildConfig{
			Eps: f64(30), MinLns: f64(6),
			CostAdvantage: f64(15), MinSegmentLength: f64(40),
			Geometry: "spatiotemporal", TemporalWeight: f64(0.02),
		},
	})
	var sum service.Summary
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models/st", "", &sum); code != http.StatusOK {
		t.Fatalf("GET /v1/models/st = %d", code)
	}
	if sum.Geometry != "spatiotemporal" || sum.TemporalWeight != 0.02 {
		t.Fatalf("summary geometry %q wt %v", sum.Geometry, sum.TemporalWeight)
	}
	if sum.Clusters == 0 {
		t.Fatal("spatiotemporal build found no clusters")
	}

	// Snapshot out, snapshot in under a new name.
	resp, err := http.Get(ts.URL + "/v1/models/st/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot export = %d, %v", resp.StatusCode, err)
	}
	putReq, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/st-clone/snapshot", bytes.NewReader(snap))
	putResp, err := http.DefaultClient.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot import = %d", putResp.StatusCode)
	}

	// The clone serves the same geometry and classifies timed uploads
	// bit-identically to the original.
	var probes bytes.Buffer
	if err := trackio.WriteTimedCSV(&probes, synth.TimedCorridorScene(2, 6, 20, 4, 17, 60, 10)); err != nil {
		t.Fatal(err)
	}
	classify := func(model string) []service.Assignment {
		var out struct {
			Results []service.Assignment `json:"results"`
		}
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/models/"+model+"/classify", probes.String(), &out); code != http.StatusOK {
			t.Fatalf("classify %s = %d", model, code)
		}
		return out.Results
	}
	want, got := classify("st"), classify("st-clone")
	if len(want) == 0 || len(want) != len(got) {
		t.Fatalf("assignments: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if got[i].Cluster != want[i].Cluster ||
			math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) ||
			got[i].Err != want[i].Err {
			t.Fatalf("probe %d: clone classified (%d, %x, %q), original (%d, %x, %q)", i,
				got[i].Cluster, math.Float64bits(got[i].Distance), got[i].Err,
				want[i].Cluster, math.Float64bits(want[i].Distance), want[i].Err)
		}
	}

	// Classifying a spatiotemporal model with plain 3-column CSV is a 400:
	// the timed decode needs the timestamp column.
	_, spatialCSV := trainingCSV(t)
	var e envelope
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/models/st/classify", spatialCSV, &e); code != http.StatusBadRequest {
		t.Fatalf("spatial classify against timed model = %d", code)
	}
	if !strings.Contains(e.Message, "timestamp") {
		t.Fatalf("error message %q does not mention the timestamp column", e.Message)
	}
}

// TestV1GeometryParamErrors pins the typed rejections: unknown geometry
// names, wt without spatiotemporal, a spatiotemporal build fed spatial CSV,
// and the same guards on the query-parameter build interface.
func TestV1GeometryParamErrors(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 2})
	_, spatialCSV := trainingCSV(t)

	post := func(req BuildRequest) (int, envelope) {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		var e envelope
		return doJSON(t, http.MethodPost, ts.URL+"/v1/models", string(body), &e), e
	}
	base := BuildConfig{Eps: f64(30), MinLns: f64(6), CostAdvantage: f64(15), MinSegmentLength: f64(40)}

	cfg := base
	cfg.Geometry = "hyperbolic"
	if code, e := post(BuildRequest{Name: "bad", Data: spatialCSV, Config: cfg}); code != http.StatusBadRequest || e.Code != "invalid_config" {
		t.Fatalf("unknown geometry = %d %q", code, e.Code)
	}

	cfg = base
	cfg.TemporalWeight = f64(0.5) // wt without geometry=spatiotemporal
	if code, e := post(BuildRequest{Name: "bad", Data: spatialCSV, Config: cfg}); code != http.StatusBadRequest || e.Code != "invalid_config" {
		t.Fatalf("wt without spatiotemporal = %d %q", code, e.Code)
	}

	cfg = base
	cfg.Geometry = "spatiotemporal"
	if code, e := post(BuildRequest{Name: "bad", Data: spatialCSV, Config: cfg}); code != http.StatusBadRequest {
		t.Fatalf("spatiotemporal build on 3-column CSV = %d %q", code, e.Code)
	}

	// Same guards on the legacy query-parameter interface.
	var e envelope
	if code := doJSON(t, http.MethodPost,
		ts.URL+"/models?name=bad&eps=30&minlns=6&geometry=hyperbolic", spatialCSV, &e); code != http.StatusBadRequest {
		t.Fatalf("query geometry=hyperbolic = %d %q", code, e.Code)
	}
	if code := doJSON(t, http.MethodPost,
		ts.URL+"/models?name=bad&eps=30&minlns=6&wt=0.5", spatialCSV, &e); code != http.StatusBadRequest {
		t.Fatalf("query wt without spatiotemporal = %d %q", code, e.Code)
	}
	if code := doJSON(t, http.MethodPost,
		ts.URL+"/models?name=bad&eps=30&minlns=6&geometry=spatiotemporal&wt=banana", spatialCSV, &e); code != http.StatusBadRequest {
		t.Fatalf("query wt=banana = %d %q", code, e.Code)
	}
}
