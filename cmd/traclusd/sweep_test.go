package main

// Endpoint tests for the multi-ε queries: the sweep curve's shape and
// defaults, the clusters-at-ε reconstruction agreeing with the model's own
// build, the table of 400 paths behind the invalid_config envelope, and
// the 422 for models that carry no merge structure (v1 snapshots).

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/service"
)

func buildSweepModel(t *testing.T, ts string) service.Summary {
	t.Helper()
	_, csv := trainingCSV(t)
	cfg := buildCfg()
	v1Build(t, ts, BuildRequest{
		Name: "sweepable", Data: csv,
		Config: BuildConfig{
			Eps: &cfg.Eps, MinLns: &cfg.MinLns,
			CostAdvantage: &cfg.CostAdvantage, MinSegmentLength: &cfg.MinSegmentLength,
		},
	})
	var sum service.Summary
	if code := doJSON(t, http.MethodGet, ts+"/v1/models/sweepable", "", &sum); code != http.StatusOK {
		t.Fatalf("GET model = %d", code)
	}
	return sum
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 2})
	sum := buildSweepModel(t, ts.URL)

	var resp sweepResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models/sweepable/sweep", "", &resp); code != http.StatusOK {
		t.Fatalf("GET sweep = %d", code)
	}
	if resp.Steps != defaultSweepSteps || len(resp.Points) != defaultSweepSteps {
		t.Fatalf("default sweep returned %d/%d points", resp.Steps, len(resp.Points))
	}
	if resp.Lo != sum.Eps/2 || resp.Hi != 2*sum.Eps {
		t.Fatalf("default range [%g, %g], want [%g, %g]", resp.Lo, resp.Hi, sum.Eps/2, 2*sum.Eps)
	}
	if got := resp.Points[0].Eps; got != resp.Lo {
		t.Errorf("first point at %g, want lo %g", got, resp.Lo)
	}
	if got := resp.Points[len(resp.Points)-1].Eps; got != resp.Hi {
		t.Errorf("last point at %g, want hi %g", got, resp.Hi)
	}
	for _, p := range resp.Points {
		if p.QMeasure != p.TotalSSE+p.NoisePenalty {
			t.Errorf("eps=%g: q_measure %g ≠ sse %g + penalty %g", p.Eps, p.QMeasure, p.TotalSSE, p.NoisePenalty)
		}
		if p.NoiseFraction < 0 || p.NoiseFraction > 1 {
			t.Errorf("eps=%g: noise fraction %g", p.Eps, p.NoiseFraction)
		}
	}

	// An explicit range lands exactly on its bounds and step count.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models/sweepable/sweep?lo=10&hi=50&steps=5", "", &resp); code != http.StatusOK {
		t.Fatalf("GET sweep explicit = %d", code)
	}
	if len(resp.Points) != 5 || resp.Points[0].Eps != 10 || resp.Points[4].Eps != 50 {
		t.Fatalf("explicit sweep = %+v", resp.Points)
	}
}

// TestClustersAtMatchesBuild cuts the (lazily built) dendrogram at the
// model's own ε and must land exactly on the clustering the build
// produced: same cluster count, noise, and removed count as the summary.
func TestClustersAtMatchesBuild(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 2})
	sum := buildSweepModel(t, ts.URL)

	var cut service.CutResult
	url := fmt.Sprintf("%s/v1/models/sweepable/clusters?eps=%g", ts.URL, sum.Eps)
	if code := doJSON(t, http.MethodGet, url, "", &cut); code != http.StatusOK {
		t.Fatalf("GET clusters = %d", code)
	}
	if len(cut.Clusters) != sum.Clusters {
		t.Errorf("cut found %d clusters, build found %d", len(cut.Clusters), sum.Clusters)
	}
	if cut.NoiseSegments != sum.NoiseSegments {
		t.Errorf("cut noise %d, build noise %d", cut.NoiseSegments, sum.NoiseSegments)
	}
	if cut.RemovedClusters != sum.RemovedClusters {
		t.Errorf("cut removed %d, build removed %d", cut.RemovedClusters, sum.RemovedClusters)
	}
	if cut.TotalSegments != sum.TotalSegments {
		t.Errorf("cut segments %d, build segments %d", cut.TotalSegments, sum.TotalSegments)
	}
	for _, c := range cut.Clusters {
		if c.Segments == 0 || len(c.Trajectories) == 0 {
			t.Errorf("cluster %d empty: %+v", c.Cluster, c)
		}
	}

	// Omitting eps defaults to the model's own ε — same cut.
	var def service.CutResult
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models/sweepable/clusters", "", &def); code != http.StatusOK {
		t.Fatalf("GET clusters default = %d", code)
	}
	if def.Eps != sum.Eps || len(def.Clusters) != len(cut.Clusters) {
		t.Errorf("default-eps cut differs: eps %g, %d clusters", def.Eps, len(def.Clusters))
	}
}

// TestSweepValidation is the table of 400 paths: every malformed or
// out-of-range parameter answers the /v1 error envelope with the right
// machine code and never a 500.
func TestSweepValidation(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 2})
	buildSweepModel(t, ts.URL)

	cases := []struct {
		name  string
		query string
		code  string
	}{
		{"lo equals hi", "/sweep?lo=10&hi=10", codeInvalidConfig},
		{"lo above hi", "/sweep?lo=50&hi=10", codeInvalidConfig},
		{"zero lo", "/sweep?lo=0&hi=10", codeInvalidConfig},
		{"negative lo", "/sweep?lo=-4&hi=10", codeInvalidConfig},
		{"NaN lo", "/sweep?lo=NaN&hi=10", codeInvalidConfig},
		{"infinite hi", "/sweep?lo=5&hi=Inf", codeInvalidConfig},
		{"negative hi", "/sweep?lo=5&hi=-10", codeInvalidConfig},
		{"steps below floor", "/sweep?lo=5&hi=50&steps=1", codeInvalidConfig},
		{"steps above cap", "/sweep?lo=5&hi=50&steps=4097", codeInvalidConfig},
		{"unparsable lo", "/sweep?lo=abc&hi=10", codeInvalidRequest},
		{"unparsable hi", "/sweep?lo=5&hi=xyz", codeInvalidRequest},
		{"unparsable steps", "/sweep?lo=5&hi=50&steps=many", codeInvalidRequest},
		{"zero eps cut", "/clusters?eps=0", codeInvalidConfig},
		{"negative eps cut", "/clusters?eps=-3", codeInvalidConfig},
		{"NaN eps cut", "/clusters?eps=NaN", codeInvalidConfig},
		{"infinite eps cut", "/clusters?eps=Inf", codeInvalidConfig},
		{"unparsable eps cut", "/clusters?eps=wide", codeInvalidRequest},
	}
	for _, tc := range cases {
		var env envelope
		code := doJSON(t, http.MethodGet, ts.URL+"/v1/models/sweepable"+tc.query, "", &env)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
			continue
		}
		if env.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, env.Code, tc.code)
		}
		if env.Message == "" || env.Legacy != env.Message {
			t.Errorf("%s: envelope %+v missing message/legacy mirror", tc.name, env)
		}
	}
}

func TestSweepUnknownModel(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	var env envelope
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models/ghost/sweep", "", &env); code != http.StatusNotFound {
		t.Fatalf("sweep on unknown model = %d", code)
	}
	if env.Code != codeNotFound {
		t.Fatalf("code %q, want %q", env.Code, codeNotFound)
	}
}

// TestSweepV1SnapshotNoDendrogram imports the frozen format-v1 golden
// snapshot — which carries no merge structure and no training geometry to
// rebuild one from — and pins the sweep answer: 422 no_dendrogram, not a
// crash and not a silent empty curve.
func TestSweepV1SnapshotNoDendrogram(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "internal", "snapshot", "testdata", "golden", "v1.snap"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, serverConfig{})
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/legacy/snapshot", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("importing v1 snapshot = %d", resp.StatusCode)
	}
	for _, path := range []string{"/v1/models/legacy/sweep", "/v1/models/legacy/clusters?eps=20"} {
		var env envelope
		if code := doJSON(t, http.MethodGet, ts.URL+path, "", &env); code != http.StatusUnprocessableEntity {
			t.Errorf("%s = %d, want 422", path, code)
			continue
		}
		if env.Code != codeNoDendrogram {
			t.Errorf("%s: code %q, want %q", path, env.Code, codeNoDendrogram)
		}
	}
}
