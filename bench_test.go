// Benchmarks regenerating every figure and table-like result of the
// TRACLUS paper's evaluation (one benchmark per entry of the DESIGN.md §4
// experiment index), plus the complexity claims (Lemma 1, Lemma 3) and
// ablation benches for the design choices DESIGN.md calls out.
//
// Run with: go test -bench=. -benchmem
package traclus_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dendro"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/gridindex"
	"repro/internal/lsdist"
	"repro/internal/mdl"
	"repro/internal/params"
	"repro/internal/rtree"
	"repro/internal/segclust"
	"repro/internal/service"
	"repro/internal/spindex"
	"repro/internal/synth"

	traclus "repro"
)

// benchReport runs an experiment once per iteration and reports a headline
// value as a custom metric.
func benchReport(b *testing.B, run func(experiments.Size) *experiments.Report, metric string) {
	b.Helper()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = run(experiments.Small)
	}
	if rep != nil {
		if v, ok := rep.Values[metric]; ok {
			b.ReportMetric(v, metric)
		}
	}
}

// ---- One bench per paper figure/table (DESIGN.md §4) ----

func BenchmarkFig1SubTrajectory(b *testing.B) {
	benchReport(b, experiments.Fig1, "traclusClusters")
}

func BenchmarkFig16EntropyHurricane(b *testing.B) {
	benchReport(b, experiments.Fig16, "optEps")
}

func BenchmarkFig17QMeasureHurricane(b *testing.B) {
	benchReport(b, experiments.Fig17, "bestEpsMinLns6")
}

func BenchmarkFig18ClusterHurricane(b *testing.B) {
	benchReport(b, experiments.Fig18, "clusters")
}

func BenchmarkFig19EntropyElk(b *testing.B) {
	benchReport(b, experiments.Fig19, "optEps")
}

func BenchmarkFig20QMeasureElk(b *testing.B) {
	benchReport(b, experiments.Fig20, "clusters")
}

func BenchmarkFig21ClusterElk(b *testing.B) {
	benchReport(b, experiments.Fig21, "clusters")
}

func BenchmarkFig22ClusterDeer(b *testing.B) {
	benchReport(b, experiments.Fig22, "clusters")
}

func BenchmarkFig23NoiseRobustness(b *testing.B) {
	benchReport(b, experiments.Fig23, "clusters")
}

func BenchmarkSec33PartitioningPrecision(b *testing.B) {
	benchReport(b, experiments.Sec33, "precision")
}

func BenchmarkSec54ParameterEffects(b *testing.B) {
	benchReport(b, experiments.Sec54, "clustersEps30")
}

func BenchmarkAppendixADistance(b *testing.B) {
	benchReport(b, experiments.AppendixA, "traclusGap")
}

func BenchmarkAppendixBWeights(b *testing.B) {
	benchReport(b, experiments.AppendixB, "clustersWTheta1.00")
}

func BenchmarkAppendixCShiftInvariance(b *testing.B) {
	benchReport(b, experiments.AppendixC, "shiftInvariant")
}

func BenchmarkAppendixDOptics(b *testing.B) {
	benchReport(b, experiments.AppendixD, "segNearEps")
}

func BenchmarkExtensions(b *testing.B) {
	benchReport(b, experiments.Extensions, "undirectedClusters")
}

// BenchmarkAblationDistance scores the competing segment distances against
// planted directional flows (adjusted Rand index as the metric).
func BenchmarkAblationDistance(b *testing.B) {
	benchReport(b, experiments.DistanceAblation, "ari_traclus")
}

// BenchmarkAblationPartitioning compares MDL partitioning against the
// classical simplifiers through the full pipeline.
func BenchmarkAblationPartitioning(b *testing.B) {
	benchReport(b, experiments.PartitionAblation, "clusters_mdl")
}

// ---- Lemma 1: O(n) approximate partitioning ----

func BenchmarkPartitionScaling(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("points=%d", n), func(b *testing.B) {
			pts := syntheticPath(n, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mdl.ApproximatePartition(pts, mdl.Config{CostAdvantage: 5})
			}
			b.ReportMetric(float64(n)/1000, "kpoints")
		})
	}
}

func BenchmarkPartitionExactDP(b *testing.B) {
	for _, n := range []int{20, 40, 80} {
		b.Run(fmt.Sprintf("points=%d", n), func(b *testing.B) {
			pts := syntheticPath(n, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mdl.OptimalPartition(pts)
			}
		})
	}
}

// ---- Lemma 3: grouping with an index vs the O(n²) scan ----

func BenchmarkGroupingIndexVsScan(b *testing.B) {
	for _, n := range []int{500, 2000} {
		items := corridorItems(n)
		for _, kind := range []segclust.IndexKind{segclust.IndexNone, segclust.IndexGrid, segclust.IndexRTree} {
			b.Run(fmt.Sprintf("segments=%d/index=%v", n, kind), func(b *testing.B) {
				cfg := segclust.Config{Eps: 25, MinLns: 5, Options: lsdist.DefaultOptions(), Index: kind}
				var calls int
				for i := 0; i < b.N; i++ {
					res, err := segclust.Run(items, cfg)
					if err != nil {
						b.Fatal(err)
					}
					calls = res.DistCalls
				}
				b.ReportMetric(float64(calls), "distcalls")
			})
		}
	}
}

// ---- End-to-end TRACLUS throughput ----

func BenchmarkTraclusEndToEnd(b *testing.B) {
	for _, tracks := range []int{60, 240} {
		b.Run(fmt.Sprintf("tracks=%d", tracks), func(b *testing.B) {
			cfg := synth.DefaultHurricaneConfig()
			cfg.NumTracks = tracks
			trs := synth.Hurricanes(cfg)
			runCfg := traclus.Config{Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := traclus.Run(trs, runCfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Parallel pipeline scaling ----

// scalingTracks is the shared input for the scaling benchmarks: 10× the
// pre-PR-4 workload (480 tracks), large enough that the grid index, the
// neighborhood arena, and the union-find grouping all operate well past
// their fixed costs. Generated once and reused across sub-benchmarks so
// -count=N samples measure the pipeline, not the generator.
var scalingTracks = func() []geom.Trajectory {
	cfg := synth.DefaultHurricaneConfig()
	cfg.NumTracks = 4800
	return synth.Hurricanes(cfg)
}()

// BenchmarkRunParallel measures the whole pipeline (partition + group +
// representatives) at increasing worker counts on a large synthetic
// workload; on a ≥ 4-core machine the parallel variants must beat
// workers=1. workers=all is the library default (Workers: 0). Scaling
// claims should come from multi-sample runs
// (go test -run=NONE -bench=BenchmarkRunParallel -count=5 .) fed to
// benchstat — single-iteration output is noise; BENCH_pr4.json holds the
// committed multi-sample baseline.
func BenchmarkRunParallel(b *testing.B) {
	trs := scalingTracks
	for _, w := range []int{1, 2, 4, 8, 0} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			runCfg := traclus.Config{
				Eps: 30, MinLns: 6,
				CostAdvantage:    15,
				MinSegmentLength: 40,
				Workers:          w,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := traclus.Run(trs, runCfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunParallelPhases isolates each phase's parallel speedup:
// partitioning alone, grouping alone (on fixed items), and the sweep via
// the full run on pre-partitioned items.
func BenchmarkRunParallelPhases(b *testing.B) {
	trs := scalingTracks
	base := core.DefaultConfig()
	base.Eps, base.MinLns = 30, 6
	base.Partition = mdl.Config{CostAdvantage: 15, MinLength: 40}
	items := core.PartitionAll(trs, base)
	for _, w := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=all"
		}
		ccfg := base
		ccfg.Workers = w
		b.Run("partition/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.PartitionAll(trs, ccfg)
			}
		})
		b.Run("group+sweep/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunOnItems(items, ccfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Distance microbenchmarks ----

func BenchmarkDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	segs := make([]geom.Segment, 1024)
	for i := range segs {
		segs[i] = geom.Seg(rng.Float64()*1000, rng.Float64()*600,
			rng.Float64()*1000, rng.Float64()*600)
	}
	b.Run("directed", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += lsdist.Dist(segs[i%1024], segs[(i*7+1)%1024])
		}
		_ = sink
	})
	b.Run("undirected", func(b *testing.B) {
		opt := lsdist.Options{Weights: lsdist.DefaultWeights(), Undirected: true}
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += lsdist.DistOpt(segs[i%1024], segs[(i*7+1)%1024], opt)
		}
		_ = sink
	})
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationCostAdvantage sweeps the partition-suppression constant
// of Section 4.1.3 and reports the resulting segment counts and cluster
// counts — the trade the paper describes as lengthening partitions "at the
// cost of preciseness".
func BenchmarkAblationCostAdvantage(b *testing.B) {
	cfg := synth.DefaultHurricaneConfig()
	cfg.NumTracks = 120
	trs := synth.Hurricanes(cfg)
	for _, ca := range []float64{0, 5, 15, 25} {
		b.Run(fmt.Sprintf("costAdvantage=%v", ca), func(b *testing.B) {
			ccfg := core.DefaultConfig()
			ccfg.Partition = mdl.Config{CostAdvantage: ca, MinLength: 40}
			ccfg.Eps, ccfg.MinLns = 30, 6
			var segs, clusters int
			for i := 0; i < b.N; i++ {
				items := core.PartitionAll(trs, ccfg)
				out, err := core.RunOnItems(items, ccfg)
				if err != nil {
					b.Fatal(err)
				}
				segs, clusters = len(items), out.NumClusters()
			}
			b.ReportMetric(float64(segs), "segments")
			b.ReportMetric(float64(clusters), "clusters")
		})
	}
}

// BenchmarkAblationEndpointLH compares the paper's length-based L(H)
// against the rejected endpoint-coordinate L(H) (Appendix C ablation).
func BenchmarkAblationEndpointLH(b *testing.B) {
	pts := syntheticPath(2000, 4)
	b.Run("lengthLH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mdl.ApproximatePartition(pts, mdl.Config{})
		}
	})
	b.Run("endpointLH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mdl.ApproximatePartitionEndpointLH(pts, mdl.Config{})
		}
	})
}

// ---- Extensions (Section 7.1 / Section 4.2 future work) ----

// BenchmarkTemporalClustering measures the spatiotemporal variant against
// plain TRACLUS on the same timed data (the temporal path cannot use the
// geometric index, so it pays the O(n²) scan the paper describes).
func BenchmarkTemporalClustering(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	var trs []traclus.TimedTrajectory
	for i := 0; i < 30; i++ {
		tr := traclus.TimedTrajectory{ID: i, Weight: 1}
		t := float64(i%3) * 1e5
		for s := 0; s <= 25; s++ {
			tr.Points = append(tr.Points, geom.Pt(
				50+30*float64(s)+rng.NormFloat64()*2,
				200+float64(i%5)*3+rng.NormFloat64()*2))
			tr.Times = append(tr.Times, t)
			t += 60
		}
		trs = append(trs, tr)
	}
	for _, wT := range []float64{0, 0.01} {
		b.Run(fmt.Sprintf("wT=%v", wT), func(b *testing.B) {
			var clusters int
			for i := 0; i < b.N; i++ {
				res, err := traclus.RunTimed(trs, traclus.Config{Eps: 25, MinLns: 5}, wT)
				if err != nil {
					b.Fatal(err)
				}
				clusters = len(res.Clusters)
			}
			b.ReportMetric(float64(clusters), "clusters")
		})
	}
}

// BenchmarkConstantShiftEmbedding measures the O(n³) metric embedding of
// segment sets (Section 4.2's deferred indexing route).
func BenchmarkConstantShiftEmbedding(b *testing.B) {
	for _, n := range []int{50, 150} {
		b.Run(fmt.Sprintf("segments=%d", n), func(b *testing.B) {
			items := corridorItems(n)
			segs := make([]geom.Segment, n)
			for i, it := range items {
				segs[i] = it.Seg
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := traclus.EmbedSegments(segs, traclus.Config{}, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexBuild compares building the two spatial indexes.
func BenchmarkIndexBuild(b *testing.B) {
	items := corridorItems(5000)
	rects := make([]geom.Rect, len(items))
	segs := make([]geom.Segment, len(items))
	for i, it := range items {
		rects[i] = it.Seg.Bounds()
		segs[i] = it.Seg
	}
	b.Run("rtree-bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtree.Bulk(rects)
		}
	})
	b.Run("rtree-insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := rtree.New()
			for j, r := range rects {
				tr.Insert(r, j)
			}
		}
	})
	b.Run("grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gridindex.Build(segs, 0)
		}
	})
}

// BenchmarkParameterHeuristic measures the Section 4.4 ε search.
func BenchmarkParameterHeuristic(b *testing.B) {
	cfg := synth.DefaultHurricaneConfig()
	cfg.NumTracks = 120
	trs := synth.Hurricanes(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := traclus.EstimateParameters(trs, 5, 60, traclus.Config{
			CostAdvantage: 15, MinSegmentLength: 40,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- helpers ----

func syntheticPath(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	x, y := 0.0, 0.0
	heading := 0.3
	for i := range pts {
		if rng.Float64() < 0.1 {
			heading += (rng.Float64() - 0.5) * 2
		}
		x += 10 * math.Cos(heading)
		y += 10 * math.Sin(heading)
		pts[i] = geom.Pt(x+rng.NormFloat64()*2, y+rng.NormFloat64()*2)
	}
	return pts
}

func corridorItems(n int) []segclust.Item {
	rng := rand.New(rand.NewSource(5))
	items := make([]segclust.Item, n)
	for i := range items {
		cy := float64(100 + 120*(i%4))
		x := rng.Float64() * 900
		items[i] = segclust.Item{
			Seg:    geom.Seg(x, cy+rng.NormFloat64()*6, x+60+rng.Float64()*40, cy+rng.NormFloat64()*6),
			TrajID: i % 40,
			Weight: 1,
		}
	}
	return items
}

// ---- Unified index subsystem (internal/spindex) ----

// BenchmarkIndexBackends measures grouping + representative generation per
// spatial-index backend on the shared 4800-track scaling input (partition
// excluded: the backends only differ in candidate generation). distcalls is
// the exact-distance evaluation count — identical for grid and rtree (both
// produce the exact MBR-distance candidate set), maximal for brute.
// BENCH_pr5.json holds the committed multi-sample before/after curve.
func BenchmarkIndexBackends(b *testing.B) {
	trs := scalingTracks
	base := core.DefaultConfig()
	base.Eps, base.MinLns = 30, 6
	base.Partition.CostAdvantage, base.Partition.MinLength = 15, 40
	items := core.PartitionAll(trs, base)
	for _, bk := range []struct {
		name string
		kind traclus.IndexKind
	}{{"grid", traclus.IndexGrid}, {"rtree", traclus.IndexRTree}, {"brute", traclus.IndexNone}} {
		b.Run("backend="+bk.name, func(b *testing.B) {
			ccfg := base
			ccfg.Index = bk.kind
			b.ReportAllocs()
			var calls int
			for i := 0; i < b.N; i++ {
				out, err := core.RunOnItems(items, ccfg)
				if err != nil {
					b.Fatal(err)
				}
				calls = out.Result.DistCalls
			}
			b.ReportMetric(float64(calls), "distcalls")
		})
	}
}

// BenchmarkServiceModelBuild measures the daemon's model-build operation:
// mode=fixed clusters at given parameters; mode=auto additionally estimates
// ε/MinLns with the §4.4 heuristic. Since the spindex refactor the auto
// path runs estimation and grouping against ONE shared index build (before,
// it was a separate EstimateParameters pass — its own index and
// neighborhood sweeps at the maximum-ε candidate radius — followed by an
// independent Build).
func BenchmarkServiceModelBuild(b *testing.B) {
	cfg := synth.DefaultHurricaneConfig()
	cfg.NumTracks = 480
	trs := synth.Hurricanes(cfg)
	base := traclus.Config{Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40}
	b.Run("mode=fixed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := service.Build(fmt.Sprintf("m%d", i), trs, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mode=auto", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := service.BuildCtx(context.Background(), fmt.Sprintf("a%d", i), trs, base,
				&service.EstimateRange{Lo: 5, Hi: 60}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchItems partitions the shared 4800-track scaling input once, so the
// dendrogram benchmarks measure cutting and estimating, not partitioning.
var benchItems = func() []segclust.Item {
	base := core.DefaultConfig()
	base.Eps, base.MinLns = 30, 6
	base.Partition.CostAdvantage, base.Partition.MinLength = 15, 40
	return core.PartitionAll(scalingTracks, base)
}()

// BenchmarkDendroCut: reconstructing the clustering at an ε via a
// dendrogram cut (binary searches + union-find replay, zero distance
// calls) against re-running the grouping at that ε over the shared index
// (the only way to change ε before the merge structure existed). The cut
// path's one-off build cost is excluded — it is paid once per dataset and
// amortises across every ε served; BenchmarkEstimateViaDendro measures the
// inclusive trade.
func BenchmarkDendroCut(b *testing.B) {
	opt := lsdist.Options{Weights: lsdist.DefaultWeights()}
	epsGrid := []float64{10, 20, 30, 40, 50, 60}
	b.Run("mode=cut", func(b *testing.B) {
		d, err := dendro.Build(context.Background(), benchItems, opt, spindex.Grid(), 60, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.CutAt(epsGrid[i%len(epsGrid)], 6, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mode=regroup", func(b *testing.B) {
		shared := segclust.NewSharedIndexFor(benchItems, opt, spindex.Grid())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := segclust.Config{Eps: epsGrid[i%len(epsGrid)], MinLns: 6, Options: opt}
			if _, err := segclust.RunSharedCtx(context.Background(), shared, cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEstimateViaDendro: the full §4.4 ε search, inclusive of the
// dendrogram build, against the pre-dendro cost of the same search — 61
// per-ε neighborhood sweeps (DefaultIterations+1 evaluations) against the
// shared index, which is exactly what the annealer used to pay.
func BenchmarkEstimateViaDendro(b *testing.B) {
	opt := lsdist.Options{Weights: lsdist.DefaultWeights()}
	lo, hi := 5.0, 60.0
	b.Run("mode=dendro", func(b *testing.B) {
		shared := segclust.NewSharedIndexFor(benchItems, opt, spindex.Grid())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := params.EstimateEpsSharedCtx(context.Background(), shared, lo, hi, params.AnnealOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mode=pereps", func(b *testing.B) {
		shared := segclust.NewSharedIndexFor(benchItems, opt, spindex.Grid())
		rng := rand.New(rand.NewSource(0))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k <= params.DefaultIterations; k++ {
				eps := lo + rng.Float64()*(hi-lo)
				if _, err := shared.NeighborhoodWeightsCtx(context.Background(), eps, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAppend measures the O(Δ) incremental append path against the
// only alternative it replaces: a full rebuild over the concatenated data.
// mode=append grows a model built on the shared 4800-track scaling input by
// Δ ∈ {1, 10, 100} fresh trajectories per op (ids disjoint from everything
// appended before, so every op does real clustering work); mode=rebuild
// re-runs the whole pipeline on 4800+Δ tracks, which is what serving a
// grown dataset cost before the appender existed. newindexes must read 0
// for every append op — the append path reuses the build's index via bulk
// insertion and never constructs a new one.
func BenchmarkAppend(b *testing.B) {
	cfg := traclus.Config{Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40}
	ctx := context.Background()
	// Fresh hurricane tracks with ids disjoint from scalingTracks (and from
	// every earlier append): idBase counts upward across all sub-benchmarks.
	idBase := len(scalingTracks)
	makeDeltas := func(n int) []geom.Trajectory {
		hcfg := synth.DefaultHurricaneConfig()
		hcfg.NumTracks = n
		hcfg.Seed += int64(idBase) // decorrelate successive pools
		pool := synth.Hurricanes(hcfg)
		for i := range pool {
			pool[i].ID = idBase
			idBase++
		}
		return pool
	}
	for _, delta := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("mode=append/delta=%d", delta), func(b *testing.B) {
			ap, err := traclus.New(traclus.WithConfig(cfg)).NewAppender(ctx, scalingTracks)
			if err != nil {
				b.Fatal(err)
			}
			pool := makeDeltas(b.N * delta)
			indexesBefore := spindex.Builds()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ap.Append(ctx, pool[i*delta:(i+1)*delta]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(spindex.Builds()-indexesBefore), "newindexes")
		})
	}
	for _, delta := range []int{1, 100} {
		b.Run(fmt.Sprintf("mode=rebuild/delta=%d", delta), func(b *testing.B) {
			trs := append(append([]geom.Trajectory{}, scalingTracks...), makeDeltas(delta)...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := traclus.Run(trs, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGeometry measures what each geometry costs over the identical
// workload shape: explicit planar must price like the default (the layer
// is a no-op), wT=0 spatiotemporal isolates the interval plumbing, wT>0
// adds the per-candidate gap term, and geodesic adds only the one-off
// equirectangular projection on top of the planar path it runs on.
func BenchmarkGeometry(b *testing.B) {
	hcfg := synth.DefaultHurricaneConfig()
	hcfg.NumTracks = 600
	spatial := synth.Hurricanes(hcfg)
	timed := make([]traclus.TimedTrajectory, len(spatial))
	for i, tr := range spatial {
		times := make([]float64, len(tr.Points))
		for s := range times {
			times[s] = float64(i)*1000 + float64(s)*6
		}
		timed[i] = traclus.TimedTrajectory{ID: tr.ID, Weight: tr.Weight, Points: tr.Points, Times: times}
	}
	// A geodesic twin: the same tracks affine-mapped into a ~1° window
	// around 47.5°N (lon pre-stretched by 1/cos so the projected meter
	// shape matches), with eps rescaled to the same fraction of the extent.
	bounds := geom.RectOf(spatial[0].Points...)
	for _, tr := range spatial {
		bounds = bounds.Union(geom.RectOf(tr.Points...))
	}
	const lat0, lon0 = 47.5, -122.0
	extent := math.Max(bounds.Width(), bounds.Height())
	degPerUnit := 1.0 / extent
	lonStretch := 1 / math.Cos(lat0*math.Pi/180)
	geodesic := make([]traclus.Trajectory, len(spatial))
	for i, tr := range spatial {
		pts := make([]geom.Point, len(tr.Points))
		for s, p := range tr.Points {
			pts[s] = geom.Pt(
				lon0+(p.X-bounds.Center().X)*degPerUnit*lonStretch,
				lat0+(p.Y-bounds.Center().Y)*degPerUnit)
		}
		geodesic[i] = traclus.Trajectory{ID: tr.ID, Weight: tr.Weight, Points: pts}
	}
	const metersPerDeg = 111194.9
	unitToMeter := degPerUnit * metersPerDeg

	cfg := traclus.Config{Eps: 30, MinLns: 6, CostAdvantage: 15, MinSegmentLength: 40}
	geoCfg := cfg
	geoCfg.Eps *= unitToMeter
	geoCfg.MinSegmentLength *= unitToMeter
	ctx := context.Background()

	runSpatial := func(b *testing.B, trs []traclus.Trajectory, c traclus.Config, opts ...traclus.Option) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		var clusters int
		for i := 0; i < b.N; i++ {
			res, err := traclus.New(append([]traclus.Option{traclus.WithConfig(c)}, opts...)...).Run(ctx, trs)
			if err != nil {
				b.Fatal(err)
			}
			clusters = len(res.Clusters)
		}
		b.ReportMetric(float64(clusters), "clusters")
	}
	b.Run("geometry=planar", func(b *testing.B) { runSpatial(b, spatial, cfg) })
	b.Run("geometry=planar-explicit", func(b *testing.B) {
		runSpatial(b, spatial, cfg, traclus.WithGeometry(traclus.PlanarGeometry()))
	})
	for _, wt := range []float64{0, 0.002} {
		b.Run(fmt.Sprintf("geometry=spatiotemporal/wt=%v", wt), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var clusters int
			for i := 0; i < b.N; i++ {
				res, err := traclus.New(traclus.WithConfig(cfg), traclus.WithTemporalWeight(wt)).RunTimed(ctx, timed)
				if err != nil {
					b.Fatal(err)
				}
				clusters = len(res.Clusters)
			}
			b.ReportMetric(float64(clusters), "clusters")
		})
	}
	b.Run("geometry=geodesic", func(b *testing.B) {
		runSpatial(b, geodesic, geoCfg, traclus.WithGeometry(traclus.GeodesicGeometry()))
	})
}
