package traclus

// This file implements online classification of unseen trajectories against
// a built clustering — the serving-side counterpart of Run. A Classifier
// snapshots a Result's representative trajectories as indexed reference
// segments; Classify then partitions a query trajectory with the same MDL
// configuration the model was built with and assigns it to the cluster whose
// representative segments are nearest under the same three-component
// distance, length-weighted across the query's partitions.
//
// The nearest-segment machinery is not private to this file: the reference
// segments are indexed through internal/spindex — the same subsystem, and
// the same backend choice, the clustering itself used — and the exact
// expanding-radius search off the dist ≥ c·mindist lower bound lives there
// (spindex.SearchQuery.Nearest), shared with the grouping phase's ε-range
// pruning instead of duplicated here.

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/geom"
	"repro/internal/geometry"
	"repro/internal/lsdist"
	"repro/internal/mdl"
	"repro/internal/quality"
	"repro/internal/segclust"
	"repro/internal/spindex"
)

// ErrNoClusters is returned when a Result holds no clusters (or no usable
// reference segments) to classify against.
var ErrNoClusters = errors.New("traclus: result has no clusters to classify against")

// ErrTimedModel is returned when a spatial Classify runs against a
// spatiotemporal model: the model's distance needs the query's timestamps,
// so the assignment must go through ClassifyTimed.
var ErrTimedModel = errors.New("traclus: model is spatiotemporal; classify timed trajectories with ClassifyTimed")

// Classifier assigns unseen trajectories to the nearest cluster of a built
// Result. It is immutable after construction and safe for concurrent use:
// every Classify call owns its query cursor, and the underlying spatial
// index is only read. Build it once per model — construction indexes every
// reference segment exactly once; Result.Classifier memoizes that build, so
// the serving layer and ad-hoc Result.Classify calls share one index.
type Classifier struct {
	part        mdl.Config
	eps         float64
	numClusters int

	// opts, kind, and custom record how the reference index was built, so
	// Snapshot can serialize a geometry-only description that rebuilds the
	// identical classifier. custom marks an unnameable (plugged-in) backend:
	// such classifiers serve normally but refuse to snapshot.
	opts   lsdist.Options
	kind   IndexKind
	custom bool

	// geo is the model's geometry. A spatiotemporal model additionally
	// carries windows — each cluster's time window, index-aligned with
	// cluster ids — so ClassifyTimed can add wT·gap(query, window) to every
	// candidate distance; a geodesic model carries the projection frame in
	// geo.Frame so queries project exactly as the training data did.
	geo     Geometry
	windows []Interval

	// Pooled reference segments: search.Segment(i) belongs to cluster
	// owner[i]; search indexes them with the model's backend and answers
	// the exact nearest queries.
	owner  []int
	search *spindex.Searcher

	// queryPool recycles per-call search cursors (candidate scratch and any
	// backend marks) so the serving hot path does not allocate
	// O(len(segs)) per trajectory.
	queryPool sync.Pool
}

// NewClassifier builds a classifier over the result's representative
// trajectories, indexing them with the same spindex backend the clustering
// used. Clusters whose representative collapsed (fewer than two sweep
// points) are represented by their member segments instead, so every
// cluster stays reachable. Returns ErrNoClusters when there is nothing to
// classify against.
//
// Prefer Result.Classifier, which builds once and caches; NewClassifier
// always constructs a fresh classifier (and thus a fresh index).
func NewClassifier(res *Result) (*Classifier, error) {
	if res == nil || len(res.Clusters) == 0 {
		return nil, ErrNoClusters
	}
	c := &Classifier{
		part:        res.cfg.Partition,
		eps:         res.cfg.Eps,
		numClusters: len(res.Clusters),
		opts:        res.cfg.Distance,
		kind:        res.cfg.Index,
		custom:      res.cfg.Backend != nil,
		geo:         res.cfg.Geometry,
		windows:     res.windows,
	}
	var segs []geom.Segment
	for ci, cl := range res.Clusters {
		for _, s := range referenceSegments(cl) {
			segs = append(segs, s)
			c.owner = append(c.owner, ci)
		}
	}
	if len(segs) == 0 {
		return nil, ErrNoClusters
	}
	c.search = spindex.NewSearcher(segs, res.cfg.Distance, res.cfg.ResolvedBackend())
	c.queryPool.New = func() any { return c.search.Query() }
	return c, nil
}

// referenceSegments returns the segments standing in for a cluster: the
// consecutive segments of its representative trajectory, or its member
// partitions when no usable representative exists.
func referenceSegments(cl Cluster) []geom.Segment {
	if len(cl.Representative) >= 2 {
		segs := make([]geom.Segment, 0, len(cl.Representative)-1)
		for i := 1; i < len(cl.Representative); i++ {
			s := geom.Segment{Start: cl.Representative[i-1], End: cl.Representative[i]}
			if !s.IsDegenerate() {
				segs = append(segs, s)
			}
		}
		if len(segs) > 0 {
			return segs
		}
	}
	return cl.Segments
}

// NumClusters returns the number of clusters the classifier assigns into.
func (c *Classifier) NumClusters() int { return c.numClusters }

// Classify assigns one trajectory to its nearest cluster. The trajectory is
// partitioned with the model's MDL configuration; each partition votes for
// the cluster owning its nearest reference segment, weighted by partition
// length. The returned distance is the length-weighted mean distance of the
// winning cluster's votes — small when the trajectory hugs the cluster's
// representative, growing as it strays.
func (c *Classifier) Classify(tr Trajectory) (clusterID int, distance float64, err error) {
	if c.geo.Timed() {
		return -1, 0, ErrTimedModel
	}
	if err := tr.Validate(); err != nil {
		return -1, 0, fmt.Errorf("traclus: %w", err)
	}
	if c.geo.Kind == geometry.Geodesic && c.geo.Frame != nil {
		// Queries arrive in the model's raw frame (lon/lat degrees) and are
		// projected through the exact frame the model was built in.
		tr.Points = c.geo.Frame.ProjectTrajectory(tr.Points)
	}
	qsegs := mdl.Partition(tr, c.part)
	return c.vote(tr.ID, qsegs, nil)
}

// ClassifyTimed assigns one timed trajectory to its nearest cluster under a
// spatiotemporal model: each query partition inherits its time span, and
// every candidate's distance gains wT·gap(query span, cluster window) —
// added through the exact nearest search, whose pruning stays sound because
// the addend is non-negative (see spindex.SearchQuery.NearestAdjusted).
// Under a planar model (or wT = 0) the assignment is identical to Classify
// on the spatial projection.
func (c *Classifier) ClassifyTimed(tr TimedTrajectory) (clusterID int, distance float64, err error) {
	if c.geo.Kind == geometry.Geodesic {
		return -1, 0, fmt.Errorf("traclus: model is geodesic; classify lat/lon trajectories with Classify")
	}
	if err := tr.Validate(); err != nil {
		return -1, 0, fmt.Errorf("traclus: %w", err)
	}
	qsegs, spans := mdl.NewPartitioner(c.part).PartitionTimed(tr.Points, tr.Times)
	ivs := make([]Interval, len(spans))
	for i, sp := range spans {
		ivs[i] = Interval{Start: sp[0], End: sp[1]}
	}
	return c.vote(tr.ID, qsegs, ivs)
}

// nearest resolves one query partition's vote: the owning cluster of the
// nearest reference segment and the (possibly temporally-adjusted) exact
// distance. A nil interval means the plain spatial search.
func (c *Classifier) nearest(s geom.Segment, iv *Interval, sq *spindex.SearchQuery) (cluster int, d float64) {
	prefer := func(cand, incumbent int) bool {
		return c.owner[cand] < c.owner[incumbent]
	}
	var id int
	if iv != nil && c.geo.WT > 0 && c.windows != nil {
		qiv := *iv
		id, d = sq.NearestAdjusted(s, c.eps, func(ref int) float64 {
			return c.geo.WT * qiv.Gap(c.windows[c.owner[ref]])
		}, prefer)
	} else {
		id, d = sq.Nearest(s, c.eps, prefer)
	}
	if id < 0 {
		return -1, d
	}
	return c.owner[id], d
}

// vote runs the length-weighted voting loop shared by Classify and
// ClassifyTimed: each query partition votes for the cluster owning its
// nearest reference segment (ties on the exact distance break toward the
// lower cluster id, keeping the assignment deterministic regardless of
// candidate enumeration order), weighted by partition length. ivs, when
// non-nil, is index-aligned with qsegs.
func (c *Classifier) vote(trID int, qsegs []geom.Segment, ivs []Interval) (int, float64, error) {
	if len(qsegs) == 0 {
		return -1, 0, fmt.Errorf("traclus: trajectory %d yields no partitions to classify", trID)
	}
	sq := c.queryPool.Get().(*spindex.SearchQuery)
	defer c.queryPool.Put(sq)
	votes := make([]float64, c.numClusters)
	dsum := make([]float64, c.numClusters)
	for k, s := range qsegs {
		if s.IsDegenerate() {
			continue
		}
		var iv *Interval
		if ivs != nil {
			iv = &ivs[k]
		}
		cl, d := c.nearest(s, iv, sq)
		if cl < 0 {
			continue // every distance overflowed; this partition can't vote
		}
		w := s.Length()
		votes[cl] += w
		dsum[cl] += d * w
	}
	best := -1
	for i := range votes {
		if votes[i] == 0 {
			continue
		}
		if best == -1 || votes[i] > votes[best] ||
			(votes[i] == votes[best] && dsum[i]/votes[i] < dsum[best]/votes[best]) {
			best = i
		}
	}
	if best == -1 {
		return -1, 0, fmt.Errorf("traclus: trajectory %d has no classifiable partitions (degenerate or out of numeric range)", trID)
	}
	return best, dsum[best] / votes[best], nil
}

// Classifier returns the classifier over this result, building it (and its
// reference-segment index) exactly once no matter how many callers ask —
// the serving layer's model build and any later Result.Classify calls share
// this single construction.
func (r *Result) Classifier() (*Classifier, error) {
	r.clsOnce.Do(func() { r.cls, r.clsErr = NewClassifier(r) })
	return r.cls, r.clsErr
}

// Classify assigns an unseen trajectory to its nearest cluster using the
// memoized Result.Classifier. Safe for concurrent use.
func (r *Result) Classify(tr Trajectory) (clusterID int, distance float64, err error) {
	cls, err := r.Classifier()
	if err != nil {
		return -1, 0, err
	}
	return cls.Classify(tr)
}

// ClassifyTimed assigns an unseen timed trajectory to its nearest cluster
// using the memoized Result.Classifier. Safe for concurrent use.
func (r *Result) ClassifyTimed(tr TimedTrajectory) (clusterID int, distance float64, err error) {
	cls, err := r.Classifier()
	if err != nil {
		return -1, 0, err
	}
	return cls.ClassifyTimed(tr)
}

// ClassifierSnapshot is the geometry-only, backend-agnostic description of
// a Classifier: everything NewClassifierFromSnapshot needs to rebuild a
// classifier that assigns every trajectory bit-identically to the original.
// The spatial index over the reference segments is deliberately absent —
// it is rebuilt on load from Reference and Index, which keeps the snapshot
// format independent of index internals (and lets the loader substitute a
// different backend without changing a single assignment).
type ClassifierSnapshot struct {
	// Eps is the model's ε, driving the expanding-radius nearest search.
	Eps float64
	// CostAdvantage and MinSegmentLength are the MDL partitioning
	// parameters applied to query trajectories.
	CostAdvantage    float64
	MinSegmentLength float64
	// Weights and Undirected define the distance (Weights are resolved —
	// never the zero value).
	Weights    Weights
	Undirected bool
	// Index names the spatial-index backend to rebuild with.
	Index IndexKind
	// Reference holds each cluster's reference segments, indexed by
	// cluster id; concatenated in order they are exactly the segments the
	// original classifier indexed.
	Reference [][]Segment
	// Geometry names the model's geometry kind ("" and "planar" both mean
	// planar Euclidean).
	Geometry string
	// TemporalWeight is wT (spatiotemporal models only).
	TemporalWeight float64
	// Frame is the resolved equirectangular projection (geodesic models
	// only): queries project through it exactly as the training data did.
	Frame *GeoFrame
	// Windows are the per-cluster time windows, index-aligned with
	// Reference (spatiotemporal models only).
	Windows []Interval
}

// ErrUnsnapshotable is returned by Classifier.Snapshot when the classifier
// was built with a plugged-in custom index backend: the snapshot format
// names backends, and a custom one has no name to rebuild from.
var ErrUnsnapshotable = errors.New("traclus: classifier uses a custom index backend and cannot be snapshotted")

// Snapshot extracts the classifier's geometry-only description. The
// round trip NewClassifierFromSnapshot(c.Snapshot()) yields a classifier
// whose Classify is bit-identical to c on every trajectory: the same
// reference segments in the same order, the same distance, the same MDL
// partitioning, and the same (named) backend.
func (c *Classifier) Snapshot() (ClassifierSnapshot, error) {
	if c.custom {
		return ClassifierSnapshot{}, ErrUnsnapshotable
	}
	s := ClassifierSnapshot{
		Eps:              c.eps,
		CostAdvantage:    c.part.CostAdvantage,
		MinSegmentLength: c.part.MinLength,
		Weights:          c.opts.Weights,
		Undirected:       c.opts.Undirected,
		Index:            c.kind,
		Reference:        make([][]Segment, c.numClusters),
		Geometry:         c.geo.Kind.String(),
		TemporalWeight:   c.geo.WT,
	}
	if c.geo.Frame != nil {
		f := *c.geo.Frame
		s.Frame = &f
	}
	if c.windows != nil {
		s.Windows = append([]Interval(nil), c.windows...)
	}
	// owner is non-decreasing (segments were appended cluster by cluster),
	// so per-cluster append reproduces the original within-cluster order.
	for i, cl := range c.owner {
		s.Reference[cl] = append(s.Reference[cl], c.search.Segment(i))
	}
	return s, nil
}

// NewClassifierFromSnapshot rebuilds a classifier from its geometry-only
// snapshot, constructing a fresh spatial index over the reference segments
// (one spindex build). Every cluster must contribute at least one reference
// segment; a snapshot with no clusters at all returns ErrNoClusters, like
// classifying against an empty result.
func NewClassifierFromSnapshot(s ClassifierSnapshot) (*Classifier, error) {
	if len(s.Reference) == 0 {
		return nil, ErrNoClusters
	}
	kind, ok := geometry.ParseKind(s.Geometry)
	if !ok {
		return nil, fmt.Errorf("traclus: classifier snapshot has unknown geometry %q", s.Geometry)
	}
	c := &Classifier{
		part:        mdl.Config{CostAdvantage: s.CostAdvantage, MinLength: s.MinSegmentLength},
		eps:         s.Eps,
		numClusters: len(s.Reference),
		opts:        lsdist.Options{Weights: s.Weights, Undirected: s.Undirected},
		kind:        s.Index,
		geo:         Geometry{Kind: kind, WT: s.TemporalWeight},
	}
	if s.Frame != nil {
		f := *s.Frame
		c.geo.Frame = &f
	}
	if field, reason := c.geo.Validate(); field != "" {
		return nil, fmt.Errorf("traclus: classifier snapshot geometry: %s %s", field, reason)
	}
	if kind == geometry.Spatiotemporal {
		if len(s.Windows) != len(s.Reference) {
			return nil, fmt.Errorf("traclus: classifier snapshot has %d cluster windows for %d clusters", len(s.Windows), len(s.Reference))
		}
		c.windows = append([]Interval(nil), s.Windows...)
	} else if len(s.Windows) != 0 {
		return nil, fmt.Errorf("traclus: classifier snapshot carries cluster windows under the %s geometry", kind)
	}
	var segs []geom.Segment
	for ci, ref := range s.Reference {
		if len(ref) == 0 {
			return nil, fmt.Errorf("traclus: classifier snapshot cluster %d has no reference segments", ci)
		}
		for _, sg := range ref {
			segs = append(segs, sg)
			c.owner = append(c.owner, ci)
		}
	}
	c.search = spindex.NewSearcher(segs, c.opts, segclust.BackendFor(s.Index))
	c.queryPool.New = func() any { return c.search.Query() }
	return c, nil
}

// ClusterStat summarises one cluster for monitoring and serving.
type ClusterStat struct {
	// Cluster is the cluster's index in Result.Clusters.
	Cluster int `json:"cluster"`
	// Segments is the member-partition count.
	Segments int `json:"segments"`
	// Trajectories is |PTR(C)|, the distinct participating trajectories.
	Trajectories int `json:"trajectories"`
	// RepresentativePoints is the length of the representative trajectory.
	RepresentativePoints int `json:"representative_points"`
	// SSE is the cluster's term of the paper's Total SSE (Formula 11):
	// mean pairwise squared distance — a compactness measure.
	SSE float64 `json:"sse"`
}

// ClusterStats returns per-cluster statistics (sizes and the per-cluster
// SSE terms of Formula 11), index-aligned with Result.Clusters.
func (r *Result) ClusterStats() []ClusterStat {
	sses := quality.ClusterSSEs(r.out.Items, r.out.Result, r.cfg.Distance, r.cfg.Workers)
	stats := make([]ClusterStat, len(r.Clusters))
	for i, c := range r.Clusters {
		stats[i] = ClusterStat{
			Cluster:              i,
			Segments:             len(c.Segments),
			Trajectories:         len(c.Trajectories),
			RepresentativePoints: len(c.Representative),
			SSE:                  sses[i],
		}
	}
	return stats
}
