package traclus

// This file implements online classification of unseen trajectories against
// a built clustering — the serving-side counterpart of Run. A Classifier
// snapshots a Result's representative trajectories as indexed reference
// segments; Classify then partitions a query trajectory with the same MDL
// configuration the model was built with and assigns it to the cluster whose
// representative segments are nearest under the same three-component
// distance, length-weighted across the query's partitions.

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/gridindex"
	"repro/internal/lsdist"
	"repro/internal/mdl"
	"repro/internal/quality"
	"repro/internal/rtree"
)

// ErrNoClusters is returned when a Result holds no clusters (or no usable
// reference segments) to classify against.
var ErrNoClusters = errors.New("traclus: result has no clusters to classify against")

// Classifier assigns unseen trajectories to the nearest cluster of a built
// Result. It is immutable after construction and safe for concurrent use:
// every Classify call owns its scratch buffers, and the underlying
// grid/R-tree index is only read. Build it once per model (NewClassifier or
// the lazy Result.Classify) — construction indexes every reference segment.
type Classifier struct {
	part        mdl.Config
	dist        lsdist.Func
	eps         float64
	numClusters int

	// Pooled reference segments: segs[i] belongs to cluster owner[i].
	segs  []geom.Segment
	owner []int

	// factor is the lower-bound constant of lsdist (dist ≥ factor·mindist);
	// 0 means no sound Euclidean prefilter exists and queries fall back to
	// full scans. grid/tree mirror the Result's Config.Index choice.
	factor float64
	grid   *gridindex.Index
	tree   *rtree.Tree

	// scratchPool recycles per-call query buffers (candidate ids and the
	// grid's seen marks, which gridindex clears after each query) so the
	// serving hot path does not allocate O(len(segs)) per trajectory.
	scratchPool sync.Pool
}

// NewClassifier builds a classifier over the result's representative
// trajectories. Clusters whose representative collapsed (fewer than two
// sweep points) are represented by their member segments instead, so every
// cluster stays reachable. Returns ErrNoClusters when there is nothing to
// classify against.
func NewClassifier(res *Result) (*Classifier, error) {
	if res == nil || len(res.Clusters) == 0 {
		return nil, ErrNoClusters
	}
	c := &Classifier{
		part:        res.cfg.Partition,
		dist:        lsdist.New(res.cfg.Distance),
		eps:         res.cfg.Eps,
		numClusters: len(res.Clusters),
	}
	for ci, cl := range res.Clusters {
		for _, s := range referenceSegments(cl) {
			c.segs = append(c.segs, s)
			c.owner = append(c.owner, ci)
		}
	}
	if len(c.segs) == 0 {
		return nil, ErrNoClusters
	}
	c.factor = lsdist.LowerBoundFactor(res.cfg.Distance.Weights)
	if c.factor > 0 && res.cfg.Index != IndexNone {
		if res.cfg.Index == IndexRTree {
			rects := make([]geom.Rect, len(c.segs))
			for i, s := range c.segs {
				rects[i] = s.Bounds()
			}
			c.tree = rtree.Bulk(rects)
		} else {
			c.grid = gridindex.Build(c.segs, 0)
		}
	}
	c.scratchPool.New = func() any {
		sc := &classifyScratch{}
		if c.grid != nil {
			sc.seen = make([]bool, len(c.segs))
		}
		return sc
	}
	return c, nil
}

// referenceSegments returns the segments standing in for a cluster: the
// consecutive segments of its representative trajectory, or its member
// partitions when no usable representative exists.
func referenceSegments(cl Cluster) []geom.Segment {
	if len(cl.Representative) >= 2 {
		segs := make([]geom.Segment, 0, len(cl.Representative)-1)
		for i := 1; i < len(cl.Representative); i++ {
			s := geom.Segment{Start: cl.Representative[i-1], End: cl.Representative[i]}
			if !s.IsDegenerate() {
				segs = append(segs, s)
			}
		}
		if len(segs) > 0 {
			return segs
		}
	}
	return cl.Segments
}

// NumClusters returns the number of clusters the classifier assigns into.
func (c *Classifier) NumClusters() int { return c.numClusters }

// classifyScratch holds the per-call buffers of nearest-segment queries so
// concurrent Classify calls never share mutable state.
type classifyScratch struct {
	cand []int
	seen []bool
}

// nearest returns the cluster owning the reference segment closest to q and
// that distance. With an index it performs an expanding-radius search: the
// lower bound dist ≥ factor·mindist guarantees that once the best exact
// distance found among candidates within Euclidean radius r is ≤ factor·r,
// no segment outside the candidate set can be closer. Ties break toward the
// lower cluster id, keeping the assignment deterministic regardless of
// candidate enumeration order.
func (c *Classifier) nearest(q geom.Segment, sc *classifyScratch) (cluster int, d float64) {
	if c.grid == nil && c.tree == nil {
		return c.scanNearest(q)
	}
	r := c.eps / c.factor
	if !(r > 0) || math.IsInf(r, 0) {
		return c.scanNearest(q)
	}
	bounds := q.Bounds()
	for iter := 0; iter < 48; iter++ {
		sc.cand = sc.cand[:0]
		if c.grid != nil {
			sc.cand = c.grid.Candidates(bounds, r, sc.cand, sc.seen)
		} else {
			c.tree.WithinDist(bounds, r, func(id int) bool {
				sc.cand = append(sc.cand, id)
				return true
			})
		}
		best, bestD := c.bestOf(q, sc.cand)
		if best >= 0 && bestD <= c.factor*r {
			return best, bestD
		}
		r *= 2
		if math.IsInf(r, 0) {
			break
		}
	}
	return c.scanNearest(q)
}

func (c *Classifier) scanNearest(q geom.Segment) (cluster int, d float64) {
	return c.best(q, len(c.segs), func(i int) int { return i })
}

func (c *Classifier) bestOf(q geom.Segment, cand []int) (cluster int, best float64) {
	return c.best(q, len(cand), func(i int) int { return cand[i] })
}

// best scans n reference segments selected by idx. A cluster of -1 means no
// segment compared below +Inf — possible when extreme (finite) coordinates
// overflow the distance computation — and callers must skip the segment.
func (c *Classifier) best(q geom.Segment, n int, idx func(int) int) (cluster int, best float64) {
	cluster, best = -1, math.Inf(1)
	for i := 0; i < n; i++ {
		j := idx(i)
		d := c.dist(q, c.segs[j])
		if d < best || (d == best && d < math.Inf(1) && c.owner[j] < cluster) {
			cluster, best = c.owner[j], d
		}
	}
	return cluster, best
}

// Classify assigns one trajectory to its nearest cluster. The trajectory is
// partitioned with the model's MDL configuration; each partition votes for
// the cluster owning its nearest reference segment, weighted by partition
// length. The returned distance is the length-weighted mean distance of the
// winning cluster's votes — small when the trajectory hugs the cluster's
// representative, growing as it strays.
func (c *Classifier) Classify(tr Trajectory) (clusterID int, distance float64, err error) {
	if err := tr.Validate(); err != nil {
		return -1, 0, fmt.Errorf("traclus: %w", err)
	}
	qsegs := mdl.Partition(tr, c.part)
	if len(qsegs) == 0 {
		return -1, 0, fmt.Errorf("traclus: trajectory %d yields no partitions to classify", tr.ID)
	}
	sc := c.scratchPool.Get().(*classifyScratch)
	defer c.scratchPool.Put(sc)
	votes := make([]float64, c.numClusters)
	dsum := make([]float64, c.numClusters)
	for _, s := range qsegs {
		if s.IsDegenerate() {
			continue
		}
		cl, d := c.nearest(s, sc)
		if cl < 0 {
			continue // every distance overflowed; this partition can't vote
		}
		w := s.Length()
		votes[cl] += w
		dsum[cl] += d * w
	}
	best := -1
	for i := range votes {
		if votes[i] == 0 {
			continue
		}
		if best == -1 || votes[i] > votes[best] ||
			(votes[i] == votes[best] && dsum[i]/votes[i] < dsum[best]/votes[best]) {
			best = i
		}
	}
	if best == -1 {
		return -1, 0, fmt.Errorf("traclus: trajectory %d has no classifiable partitions (degenerate or out of numeric range)", tr.ID)
	}
	return best, dsum[best] / votes[best], nil
}

// Classify assigns an unseen trajectory to its nearest cluster using a
// classifier built lazily (once) over this result. For high-throughput
// serving, build the classifier explicitly with NewClassifier; both paths
// share the same assignment semantics and are safe for concurrent use.
func (r *Result) Classify(tr Trajectory) (clusterID int, distance float64, err error) {
	r.clsOnce.Do(func() { r.cls, r.clsErr = NewClassifier(r) })
	if r.clsErr != nil {
		return -1, 0, r.clsErr
	}
	return r.cls.Classify(tr)
}

// ClusterStat summarises one cluster for monitoring and serving.
type ClusterStat struct {
	// Cluster is the cluster's index in Result.Clusters.
	Cluster int `json:"cluster"`
	// Segments is the member-partition count.
	Segments int `json:"segments"`
	// Trajectories is |PTR(C)|, the distinct participating trajectories.
	Trajectories int `json:"trajectories"`
	// RepresentativePoints is the length of the representative trajectory.
	RepresentativePoints int `json:"representative_points"`
	// SSE is the cluster's term of the paper's Total SSE (Formula 11):
	// mean pairwise squared distance — a compactness measure.
	SSE float64 `json:"sse"`
}

// ClusterStats returns per-cluster statistics (sizes and the per-cluster
// SSE terms of Formula 11), index-aligned with Result.Clusters.
func (r *Result) ClusterStats() []ClusterStat {
	sses := quality.ClusterSSEs(r.out.Items, r.out.Result, r.cfg.Distance, r.cfg.Workers)
	stats := make([]ClusterStat, len(r.Clusters))
	for i, c := range r.Clusters {
		stats[i] = ClusterStat{
			Cluster:              i,
			Segments:             len(c.Segments),
			Trajectories:         len(c.Trajectories),
			RepresentativePoints: len(c.Representative),
			SSE:                  sses[i],
		}
	}
	return stats
}
