package traclus_test

// Serial-vs-parallel equivalence: the tentpole guarantee of the concurrent
// pipeline is that Workers is a throughput knob, never a semantics knob.
// These tests pin that down end-to-end — identical cluster membership,
// representatives (bit-for-bit), noise and removal counts — across worker
// counts and index strategies.

import (
	"reflect"
	"testing"

	"repro/internal/synth"

	traclus "repro"
)

func equivalenceWorkload(t testing.TB, tracks int) []traclus.Trajectory {
	t.Helper()
	cfg := synth.DefaultHurricaneConfig()
	cfg.NumTracks = tracks
	return synth.Hurricanes(cfg)
}

func TestRunWorkersEquivalence(t *testing.T) {
	trs := equivalenceWorkload(t, 120)
	for _, index := range []traclus.IndexKind{traclus.IndexGrid, traclus.IndexRTree, traclus.IndexNone} {
		cfg := traclus.Config{
			Eps: 30, MinLns: 6,
			CostAdvantage:    15,
			MinSegmentLength: 40,
			Index:            index,
			Workers:          1,
		}
		serial, err := traclus.Run(trs, cfg)
		if err != nil {
			t.Fatalf("index=%v serial: %v", index, err)
		}
		for _, workers := range []int{2, 3, 4, 8, 0} {
			cfg.Workers = workers
			parallel, err := traclus.Run(trs, cfg)
			if err != nil {
				t.Fatalf("index=%v workers=%d: %v", index, workers, err)
			}
			if !reflect.DeepEqual(serial.Clusters, parallel.Clusters) {
				t.Errorf("index=%v workers=%d: clusters differ from serial", index, workers)
			}
			if serial.NoiseSegments != parallel.NoiseSegments ||
				serial.TotalSegments != parallel.TotalSegments ||
				serial.RemovedClusters != parallel.RemovedClusters {
				t.Errorf("index=%v workers=%d: counts differ: serial=(%d,%d,%d) parallel=(%d,%d,%d)",
					index, workers,
					serial.NoiseSegments, serial.TotalSegments, serial.RemovedClusters,
					parallel.NoiseSegments, parallel.TotalSegments, parallel.RemovedClusters)
			}
		}
	}
}

// TestRunWorkersEquivalenceUndirected exercises the equivalence on the
// undirected-distance variant, whose neighborhoods differ from the directed
// default.
func TestRunWorkersEquivalenceUndirected(t *testing.T) {
	trs := equivalenceWorkload(t, 60)
	cfg := traclus.Config{Eps: 30, MinLns: 6, Undirected: true, Workers: 1}
	serial, err := traclus.Run(trs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := traclus.Run(trs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Clusters, parallel.Clusters) {
		t.Error("undirected: parallel clusters differ from serial")
	}
}

// TestEstimateParametersWorkersEquivalence pins the Section 4.4 heuristic:
// the annealing search is seeded deterministically and every ε evaluation
// uses the same parallel neighborhood pass, so the estimate must not depend
// on the worker count.
func TestEstimateParametersWorkersEquivalence(t *testing.T) {
	trs := equivalenceWorkload(t, 60)
	base := traclus.Config{CostAdvantage: 15, MinSegmentLength: 40, Workers: 1}
	serial, err := traclus.EstimateParameters(trs, 5, 60, base)
	if err != nil {
		t.Fatal(err)
	}
	base.Workers = 4
	parallel, err := traclus.EstimateParameters(trs, 5, 60, base)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Errorf("estimate depends on workers: serial=%+v parallel=%+v", serial, parallel)
	}
}
