package traclus_test

import (
	"math"
	"testing"

	traclus "repro"
)

func timedCorridor(n, idBase int, t0 float64) []traclus.TimedTrajectory {
	var trs []traclus.TimedTrajectory
	for i := 0; i < n; i++ {
		tr := traclus.TimedTrajectory{ID: idBase + i, Weight: 1}
		for s := 0; s <= 20; s++ {
			tr.Points = append(tr.Points, traclus.Pt(100+30*float64(s), 300+float64(i)))
			tr.Times = append(tr.Times, t0+60*float64(s))
		}
		trs = append(trs, tr)
	}
	return trs
}

func TestRunTimedSeparatesByTime(t *testing.T) {
	var trs []traclus.TimedTrajectory
	trs = append(trs, timedCorridor(3, 0, 0)...)
	trs = append(trs, timedCorridor(3, 3, 1e6)...)

	spatial, err := traclus.RunTimed(trs, traclus.Config{Eps: 25, MinLns: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(spatial.Clusters) != 1 {
		t.Fatalf("wT=0 clusters = %d, want 1", len(spatial.Clusters))
	}

	timed, err := traclus.RunTimed(trs, traclus.Config{Eps: 25, MinLns: 3}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(timed.Clusters) != 2 {
		t.Fatalf("wT>0 clusters = %d, want 2", len(timed.Clusters))
	}
	if timed.Clusters[0].Window.Gap(timed.Clusters[1].Window) == 0 {
		t.Error("time windows overlap")
	}
}

func TestRunTimedValidation(t *testing.T) {
	if _, err := traclus.RunTimed(nil, traclus.Config{MinLns: 3}, 0); err == nil {
		t.Error("Eps unset accepted")
	}
	if _, err := traclus.RunTimed(nil, traclus.Config{Eps: 10, MinLns: 3}, -1); err == nil {
		t.Error("negative temporal weight accepted")
	}
}

func TestEmbedSegmentsFacade(t *testing.T) {
	segs := []traclus.Segment{
		{Start: traclus.Pt(0, 0), End: traclus.Pt(100, 0)},
		{Start: traclus.Pt(0, 10), End: traclus.Pt(100, 10)},
		{Start: traclus.Pt(0, 0), End: traclus.Pt(0, 100)},
		{Start: traclus.Pt(50, 50), End: traclus.Pt(150, 60)},
	}
	emb, err := traclus.EmbedSegments(segs, traclus.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Dims() <= 0 {
		t.Fatalf("Dims = %d", emb.Dims())
	}
	// Off-diagonal: embedded D² = dist + shift.
	for i := range segs {
		for j := range segs {
			want := 0.0
			if i != j {
				want = traclus.Distance(segs[i], segs[j]) + emb.Shift()
			}
			if got := emb.Distance2(i, j); math.Abs(got-want) > 1e-6*(1+want) {
				t.Errorf("D2(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	if len(emb.Coord(0)) != emb.Dims() {
		t.Error("coordinate length mismatch")
	}
	if _, err := traclus.EmbedSegments(nil, traclus.Config{}, 0); err == nil {
		t.Error("empty segment set accepted")
	}
}
